// Package safety implements an independent safety monitor for the driving
// stack: an Automatic Emergency Braking (AEB) module that watches the
// forward LIDAR cone and overrides the agent's control when a collision is
// imminent.
//
// AEB extends the paper's architecture in the direction its conclusion
// points ("the need to explore the real-time nature and constraints
// associated with the AV"): it is a mitigation whose effectiveness — and
// whose own vulnerability to sensor faults — AVFI can quantify. The
// ablation campaign (cmd/avfi-ablations -sweep aeb) measures both: AEB
// recovers most collisions the camera faults cause, and LIDAR faults
// (dropout, ghost echoes) disable or pervert it.
package safety

import (
	"math"

	"github.com/avfi/avfi/internal/physics"
)

// AEB is a last-resort brake controller. The zero value is disabled;
// construct with NewAEB.
type AEB struct {
	// ConeHalfAngle is the half-angle of the forward watch cone, radians.
	ConeHalfAngle float64
	// Margin is added to the physical stopping distance, meters.
	Margin float64
	// MinTrigger is the range below which AEB always brakes, regardless of
	// speed (covers sensor latency at crawl speeds).
	MinTrigger float64
	// Params are the vehicle constants for the stopping-distance model.
	Params physics.VehicleParams
}

// NewAEB returns the default emergency-braking configuration.
func NewAEB(params physics.VehicleParams) *AEB {
	return &AEB{
		ConeHalfAngle: 25 * math.Pi / 180,
		Margin:        4.5,
		MinTrigger:    3.0,
		Params:        params,
	}
}

// Intervention describes an AEB decision for one frame.
type Intervention struct {
	// Triggered reports whether AEB overrode the control.
	Triggered bool
	// MinForwardRange is the smallest range seen in the watch cone.
	MinForwardRange float64
}

// Filter inspects the LIDAR scan (beam 0 = straight ahead, beams spread
// counterclockwise over 2*pi) and overrides the control with a full brake
// when the closest forward return is inside the stopping envelope for the
// measured speed. A nil or empty scan leaves the control untouched — AEB
// fails silent on total sensor loss, exactly the failure mode the LIDAR
// fault campaign measures.
func (a *AEB) Filter(ctl physics.Control, lidar []float64, speed float64) (physics.Control, Intervention) {
	iv := Intervention{MinForwardRange: math.Inf(1)}
	if len(lidar) == 0 {
		return ctl, iv
	}
	n := len(lidar)
	for i, rng := range lidar {
		// Beam angle relative to heading.
		angle := 2 * math.Pi * float64(i) / float64(n)
		if angle > math.Pi {
			angle -= 2 * math.Pi
		}
		if math.Abs(angle) > a.ConeHalfAngle {
			continue
		}
		if rng < iv.MinForwardRange {
			iv.MinForwardRange = rng
		}
	}
	if math.IsInf(iv.MinForwardRange, 1) {
		return ctl, iv
	}
	trigger := physics.StoppingDistance(speed, a.Params) + a.Margin
	if trigger < a.MinTrigger {
		trigger = a.MinTrigger
	}
	if iv.MinForwardRange <= trigger {
		iv.Triggered = true
		ctl.Throttle = 0
		ctl.Brake = 1
	}
	return ctl, iv
}
