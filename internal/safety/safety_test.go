package safety

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/physics"
)

func scan(n int, forward float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 60
	}
	out[0] = forward
	return out
}

func TestAEBTriggersOnCloseObstacle(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	ctl := physics.Control{Throttle: 0.8}
	got, iv := a.Filter(ctl, scan(36, 5), 10) // stopping distance at 10 m/s ≈ 6.25 m + margin
	if !iv.Triggered {
		t.Fatal("AEB did not trigger inside the stopping envelope")
	}
	if got.Brake != 1 || got.Throttle != 0 {
		t.Errorf("AEB override = %+v", got)
	}
	if math.Abs(iv.MinForwardRange-5) > 1e-9 {
		t.Errorf("MinForwardRange = %v", iv.MinForwardRange)
	}
}

func TestAEBIgnoresFarObstacle(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	ctl := physics.Control{Throttle: 0.8}
	got, iv := a.Filter(ctl, scan(36, 40), 8)
	if iv.Triggered {
		t.Error("AEB triggered on a distant return")
	}
	if got != ctl {
		t.Error("AEB modified control without triggering")
	}
}

func TestAEBIgnoresSideReturns(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	ranges := make([]float64, 36)
	for i := range ranges {
		ranges[i] = 60
	}
	ranges[9] = 1.0  // 90 degrees left
	ranges[18] = 1.0 // directly behind
	ranges[27] = 1.0 // 90 degrees right
	_, iv := a.Filter(physics.Control{}, ranges, 10)
	if iv.Triggered {
		t.Error("AEB braked for returns outside the forward cone")
	}
}

func TestAEBConeIncludesNearForwardBeams(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	ranges := make([]float64, 36)
	for i := range ranges {
		ranges[i] = 60
	}
	// Beam 2 of 36 = 20 degrees left: inside the 25-degree cone.
	ranges[2] = 2.0
	_, iv := a.Filter(physics.Control{}, ranges, 8)
	if !iv.Triggered {
		t.Error("AEB missed an obstacle 20 degrees off-axis")
	}
	// Beam 35 = 10 degrees right: also inside.
	for i := range ranges {
		ranges[i] = 60
	}
	ranges[35] = 2.0
	_, iv = a.Filter(physics.Control{}, ranges, 8)
	if !iv.Triggered {
		t.Error("AEB missed an obstacle 10 degrees right")
	}
}

func TestAEBSpeedScalesTriggerDistance(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	// 12 m ahead: safe at low speed, unsafe at high speed.
	_, slow := a.Filter(physics.Control{}, scan(36, 12), 3)
	if slow.Triggered {
		t.Error("AEB triggered at crawl speed with 12 m clearance")
	}
	_, fast := a.Filter(physics.Control{}, scan(36, 12), 15)
	if !fast.Triggered {
		t.Error("AEB did not trigger at speed with 12 m clearance")
	}
}

func TestAEBMinTriggerAtCrawl(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	_, iv := a.Filter(physics.Control{Throttle: 0.5}, scan(36, 2), 0.5)
	if !iv.Triggered {
		t.Error("AEB ignored an obstacle 2 m ahead at crawl speed")
	}
}

func TestAEBFailsSilentWithoutLidar(t *testing.T) {
	a := NewAEB(physics.DefaultVehicleParams())
	ctl := physics.Control{Throttle: 1}
	got, iv := a.Filter(ctl, nil, 10)
	if iv.Triggered || got != ctl {
		t.Error("AEB acted without sensor data")
	}
}
