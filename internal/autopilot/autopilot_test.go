package autopilot

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/world"
)

// straightRoute builds a 300 m straight route along +X.
func straightRoute(t *testing.T) *world.Route {
	t.Helper()
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(300, 0))
	net.AddEdge(a, b)
	r, err := net.PlanRoute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// lRoute builds an L-shaped route with a left turn.
func lRoute(t *testing.T) *world.Route {
	t.Helper()
	net := world.NewNetwork(3.5, 2)
	a := net.AddNode(geom.V(0, 0))
	b := net.AddNode(geom.V(150, 0))
	c := net.AddNode(geom.V(150, 150))
	net.AddEdge(a, b)
	net.AddEdge(b, c)
	r, err := net.PlanRoute(a, c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func drive(route *world.Route, steps int, obstacles []geom.OBB) (physics.VehicleState, float64) {
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	state := physics.VehicleState{Pose: route.Start()}
	maxLat := 0.0
	for i := 0; i < steps; i++ {
		ctl := pilot.Control(state, obstacles)
		state = physics.StepVehicle(state, ctl, params, 1.0/15)
		_, lat, _ := route.Project(state.Pose.Pos)
		if math.Abs(lat) > maxLat {
			maxLat = math.Abs(lat)
		}
	}
	return state, maxLat
}

func TestTracksStraightRoute(t *testing.T) {
	route := straightRoute(t)
	state, maxLat := drive(route, 15*30, nil)
	if state.Pose.Pos.X < 150 {
		t.Errorf("expert covered only %.0f m in 30 s", state.Pose.Pos.X)
	}
	if maxLat > 0.5 {
		t.Errorf("max lateral error %.2f m on a straight", maxLat)
	}
}

func TestReachesCruiseSpeedOnStraight(t *testing.T) {
	route := straightRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	state := physics.VehicleState{Pose: route.Start()}
	for i := 0; i < 15*10; i++ {
		state = physics.StepVehicle(state, pilot.Control(state, nil), params, 1.0/15)
	}
	cfg := DefaultConfig()
	if state.Speed < cfg.CruiseSpeed*0.8 {
		t.Errorf("speed after 10 s = %.1f, cruise %.1f", state.Speed, cfg.CruiseSpeed)
	}
	if state.Speed > cfg.CruiseSpeed*1.15 {
		t.Errorf("overshoot: %.1f vs cruise %.1f", state.Speed, cfg.CruiseSpeed)
	}
}

func TestNavigatesTurnWithinLane(t *testing.T) {
	route := lRoute(t)
	state, maxLat := drive(route, 15*90, nil)
	// Must end near the goal.
	if state.Pose.Pos.Dist(route.Goal()) > 10 {
		t.Errorf("ended %.0f m from goal", state.Pose.Pos.Dist(route.Goal()))
	}
	// Corner cutting happens at the junction (waypoints jump across the
	// trim region), but must stay bounded.
	if maxLat > 4 {
		t.Errorf("max lateral error %.2f m through turn", maxLat)
	}
}

func TestSlowsForTurn(t *testing.T) {
	route := lRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	state := physics.VehicleState{Pose: route.Start()}
	minSpeedNearTurn := math.MaxFloat64
	for i := 0; i < 15*60; i++ {
		state = physics.StepVehicle(state, pilot.Control(state, nil), params, 1.0/15)
		// The junction sits at (150, 0); sample speeds within 20 m of it
		// once the vehicle is up to speed.
		if i > 15*5 && state.Pose.Pos.Dist(geom.V(150, 0)) < 20 {
			if state.Speed < minSpeedNearTurn {
				minSpeedNearTurn = state.Speed
			}
		}
	}
	cruise := DefaultConfig().CruiseSpeed
	if minSpeedNearTurn > cruise*0.8 {
		t.Errorf("expert did not slow for the turn: min %.1f near junction (cruise %.1f)", minSpeedNearTurn, cruise)
	}
}

func TestBrakesForObstacle(t *testing.T) {
	route := straightRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	state := physics.VehicleState{Pose: route.Start()}
	// Reach speed first.
	for i := 0; i < 15*8; i++ {
		state = physics.StepVehicle(state, pilot.Control(state, nil), params, 1.0/15)
	}
	// Obstacle parked dead ahead.
	obstacle := geom.NewOBB(geom.Pose{Pos: state.Pose.Pos.Add(geom.V(25, 0))}, 4.5, 2)
	stopped := false
	for i := 0; i < 15*10; i++ {
		state = physics.StepVehicle(state, pilot.Control(state, []geom.OBB{obstacle}), params, 1.0/15)
		if state.Speed < 0.05 {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Fatal("expert never stopped for the obstacle")
	}
	// Must have stopped short of the obstacle box.
	ego := physics.VehicleOBB(state, params)
	if ego.Intersects(obstacle) {
		t.Error("expert stopped inside the obstacle")
	}
}

func TestIgnoresObstacleBeside(t *testing.T) {
	route := straightRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	state := physics.VehicleState{Pose: route.Start(), Speed: 6}
	// Obstacle well off the corridor (opposite lane/sidewalk).
	obstacle := geom.NewOBB(geom.Pose{Pos: state.Pose.Pos.Add(geom.V(15, 6))}, 4.5, 2)
	ctl := pilot.Control(state, []geom.OBB{obstacle})
	if ctl.Brake > 0.5 {
		t.Errorf("expert slammed brakes for an obstacle beside the road: %+v", ctl)
	}
}

func TestStopsNearGoal(t *testing.T) {
	route := straightRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	// Start 10 m from the goal at speed.
	start := route.PointAt(route.Length() - 10)
	state := physics.VehicleState{
		Pose:  geom.Pose{Pos: start, Heading: route.HeadingAt(route.Length() - 10)},
		Speed: 7,
	}
	ctl := pilot.Control(state, nil)
	// Near the goal the speed target drops, so the expert must not be at
	// full throttle.
	if ctl.Throttle > 0.9 {
		t.Errorf("full throttle 10 m from goal: %+v", ctl)
	}
}

func TestControlAlwaysSane(t *testing.T) {
	route := lRoute(t)
	params := physics.DefaultVehicleParams()
	pilot := New(route, params, DefaultConfig())
	// Probe controls from odd states (off-route, reversed heading).
	states := []physics.VehicleState{
		{Pose: geom.P(75, 20, -1.2), Speed: 9},
		{Pose: geom.P(-5, -5, 3.0), Speed: 0},
		{Pose: geom.P(150, 150, 0.5), Speed: 3},
	}
	for _, s := range states {
		ctl := pilot.Control(s, nil)
		if ctl.Steer < -1 || ctl.Steer > 1 || ctl.Throttle < 0 || ctl.Throttle > 1 ||
			ctl.Brake < 0 || ctl.Brake > 1 ||
			math.IsNaN(ctl.Steer+ctl.Throttle+ctl.Brake) {
			t.Errorf("insane control %+v from state %+v", ctl, s)
		}
	}
}
