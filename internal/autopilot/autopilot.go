// Package autopilot is the oracle expert driver: a pure-pursuit steering
// controller with curvature-aware speed control and obstacle yielding,
// operating on ground-truth state.
//
// It plays two roles in the AVFI reproduction, mirroring the paper's
// pipeline: (1) it generates the demonstration data the imitation-learning
// agent (internal/agent) is trained on — standing in for the human
// demonstrations behind Codevilla et al.'s IL-CNN — and (2) it is the
// fault-free reference controller campaigns compare against.
package autopilot

import (
	"math"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/world"
)

// Config tunes the expert.
type Config struct {
	// CruiseSpeed is the target speed on straights, m/s.
	CruiseSpeed float64
	// LookaheadBase and LookaheadGain set the pure-pursuit lookahead
	// distance: base + gain*speed.
	LookaheadBase float64
	LookaheadGain float64
	// MaxLatAccel bounds cornering speed, m/s^2.
	MaxLatAccel float64
	// ThrottleGain is the proportional speed-error gain.
	ThrottleGain float64
	// YieldDistance is how far ahead the expert scans for obstacles.
	YieldDistance float64
}

// DefaultConfig returns the expert used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		CruiseSpeed:   7,
		LookaheadBase: 4,
		LookaheadGain: 0.35,
		MaxLatAccel:   2.2,
		ThrottleGain:  0.5,
		YieldDistance: 11,
	}
}

// Pilot drives one route.
type Pilot struct {
	route  *world.Route
	params physics.VehicleParams
	cfg    Config
}

// New constructs a pilot for the route.
func New(route *world.Route, params physics.VehicleParams, cfg Config) *Pilot {
	return &Pilot{route: route, params: params, cfg: cfg}
}

// Control computes the expert action from ground truth: the ego state and
// the collision boxes of every other road user.
func (p *Pilot) Control(state physics.VehicleState, obstacles []geom.OBB) physics.Control {
	s, _, _ := p.route.Project(state.Pose.Pos)

	// --- Pure-pursuit steering ---
	lookahead := p.cfg.LookaheadBase + p.cfg.LookaheadGain*state.Speed
	target := p.route.PointAt(s + lookahead)
	local := state.Pose.ToLocal(target)
	// Curvature of the arc through the target: k = 2y/L^2.
	l2 := math.Max(local.LenSq(), 1e-6)
	curvature := 2 * local.Y / l2
	steerAngle := math.Atan(curvature * p.params.Wheelbase)
	steer := geom.Clamp(steerAngle/p.params.MaxSteerAngle, -1, 1)

	// --- Speed target: slow for upcoming curvature and for the goal ---
	targetV := p.cfg.CruiseSpeed
	if curv := p.upcomingCurvature(s); curv > 1e-4 {
		vMax := math.Sqrt(p.cfg.MaxLatAccel / curv)
		targetV = math.Min(targetV, math.Max(vMax, 2.0))
	}
	if rem := p.route.RemainingAt(s); rem < 15 {
		// Taper to a stop at the goal (the floor keeps approach speed
		// reasonable until the final couple of meters).
		floor := 1.5
		if rem < 4 {
			floor = 0
		}
		targetV = math.Min(targetV, math.Max(rem/2.5, floor))
	}

	// --- Obstacle yielding ---
	if p.obstacleAhead(state, obstacles) {
		return physics.Control{Steer: steer, Brake: 1}
	}

	// --- Longitudinal P control ---
	errV := targetV - state.Speed
	ctl := physics.Control{Steer: steer}
	if errV >= 0 {
		ctl.Throttle = geom.Clamp(p.cfg.ThrottleGain*errV, 0, 1)
	} else {
		ctl.Brake = geom.Clamp(-p.cfg.ThrottleGain*errV, 0, 1)
	}
	return ctl
}

// upcomingCurvature estimates path curvature over the next stretch: the
// heading change between two lookahead points divided by their separation.
func (p *Pilot) upcomingCurvature(s float64) float64 {
	const span = 12.0
	h1 := p.route.HeadingAt(s + 2)
	h2 := p.route.HeadingAt(s + 2 + span)
	return math.Abs(geom.AngleDiff(h1, h2)) / span
}

// obstacleAhead reports whether any obstacle box intrudes into the ego's
// forward corridor within the yield envelope.
func (p *Pilot) obstacleAhead(state physics.VehicleState, obstacles []geom.OBB) bool {
	reach := p.cfg.YieldDistance + physics.StoppingDistance(state.Speed, p.params)
	corridor := geom.NewOBB(
		state.Pose.Advance(p.params.Length/2+reach/2),
		reach,
		p.params.Width+0.5,
	)
	for _, ob := range obstacles {
		if corridor.Intersects(ob) {
			return true
		}
	}
	return false
}
