package sim

import (
	"github.com/avfi/avfi/internal/geom"
)

// ViolationKind classifies a traffic violation, following the paper's
// taxonomy: "lane violations, driving on the curb, and collisions with
// pedestrians, cars, and other objects on the streets".
type ViolationKind int

// Violation kinds. Enums start at one.
const (
	ViolationInvalid ViolationKind = iota
	// ViolationLane: the vehicle center crossed the center line into the
	// opposing lane (outside junction boxes, which have no markings).
	ViolationLane
	// ViolationCurb: the vehicle center left the paved road.
	ViolationCurb
	// ViolationCollisionVehicle: struck another vehicle.
	ViolationCollisionVehicle
	// ViolationCollisionPedestrian: struck a pedestrian.
	ViolationCollisionPedestrian
	// ViolationCollisionStatic: struck a building or other fixed object.
	ViolationCollisionStatic
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationLane:
		return "lane"
	case ViolationCurb:
		return "curb"
	case ViolationCollisionVehicle:
		return "collision-vehicle"
	case ViolationCollisionPedestrian:
		return "collision-pedestrian"
	case ViolationCollisionStatic:
		return "collision-static"
	default:
		return "invalid"
	}
}

// IsAccident reports whether the violation counts toward Accidents Per KM
// (the paper's APK counts collisions).
func (k ViolationKind) IsAccident() bool {
	switch k {
	case ViolationCollisionVehicle, ViolationCollisionPedestrian, ViolationCollisionStatic:
		return true
	default:
		return false
	}
}

// Violation is one debounced violation event.
type Violation struct {
	Kind ViolationKind
	// TimeSec is the episode time at which the event started.
	TimeSec float64
	// Pos is where the ego vehicle was.
	Pos geom.Vec
}

// violationCooldownSec: a violation condition must clear for this long
// before the same kind can produce a new event. This makes VPK count
// discrete violations (the paper's "number of traffic violations"), not
// frames spent violating.
const violationCooldownSec = 2.0

// violationTracker debounces per-kind raw conditions into events.
type violationTracker struct {
	events []Violation
	// lastTrue is the most recent time each kind's condition held.
	lastTrue map[ViolationKind]float64
	// active marks kinds currently in a violation episode.
	active map[ViolationKind]bool
}

func newViolationTracker() *violationTracker {
	return &violationTracker{
		lastTrue: make(map[ViolationKind]float64),
		active:   make(map[ViolationKind]bool),
	}
}

// observe folds one frame's raw condition for a kind.
func (t *violationTracker) observe(kind ViolationKind, cond bool, now float64, pos geom.Vec) {
	if cond {
		last, seen := t.lastTrue[kind]
		if !t.active[kind] && (!seen || now-last > violationCooldownSec) {
			t.events = append(t.events, Violation{Kind: kind, TimeSec: now, Pos: pos})
		}
		t.active[kind] = true
		t.lastTrue[kind] = now
		return
	}
	if t.active[kind] {
		if last, seen := t.lastTrue[kind]; seen && now-last > violationCooldownSec {
			t.active[kind] = false
		}
	}
}

// Events returns the debounced events so far.
func (t *violationTracker) Events() []Violation { return t.events }
