// Package sim is the AVFI world simulator server core: it owns the town,
// the ego vehicle, NPC traffic and pedestrians, steps everything on the
// paper's fixed 15 FPS clock, detects traffic violations (lane violations,
// driving on the curb, collisions with vehicles/pedestrians/static
// objects), and manages navigation missions from start intersection to
// goal — the role CARLA's server plays in the paper's architecture.
package sim

import (
	"fmt"
	"hash/fnv"

	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/world"
)

// FPS is the simulation frame rate. The paper: "Our simulation environment
// is configured to run at 15 frames per second"; Figure 4's delay axis is
// denominated in these frames.
const FPS = 15

// Dt is the simulation step in seconds.
const Dt = 1.0 / FPS

// WorldConfig parameterizes a World (town + camera + LIDAR).
type WorldConfig struct {
	Town   world.TownConfig
	Camera render.Config
	// LidarBeams is the planar scanner's beam count (0 disables LIDAR).
	LidarBeams int
	// LidarRange is the scanner's maximum range in meters.
	LidarRange float64
	// Seed generates the town deterministically.
	Seed uint64
}

// DefaultWorldConfig is the town/camera setup used by the paper-figure
// experiments.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Town:       world.DefaultTownConfig(),
		Camera:     render.DefaultConfig(),
		LidarBeams: 36,
		LidarRange: 60,
		Seed:       1,
	}
}

// Hash fingerprints the world configuration for the dial-time handshake:
// two processes whose WorldConfigs hash equal generate bit-identical
// worlds, so a campaign pairing with a worker announcing the same hash
// keeps episode results bit-identical. The digest covers every field
// (including nested town/camera parameters) via the Go value syntax, so
// any configuration drift — a new field included — changes the hash.
func (c WorldConfig) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", c)
	return h.Sum64()
}

// EpisodeConfig parameterizes one mission.
type EpisodeConfig struct {
	// From and To are the mission's start and goal intersections.
	From, To world.NodeID
	// Seed drives all episode randomness (NPC behaviour, sensor noise).
	Seed uint64
	// Weather for the whole episode.
	Weather world.Weather
	// NumNPCs and NumPedestrians populate the town.
	NumNPCs        int
	NumPedestrians int
	// TimeoutSec ends the episode unsuccessfully; 0 derives it from the
	// route length (the paper's "fixed amount of time" per mission).
	TimeoutSec float64
	// GoalRadius is how close to the goal counts as arrival, meters.
	GoalRadius float64
}

// Validate checks the episode configuration.
func (c EpisodeConfig) Validate() error {
	if c.From == c.To {
		return fmt.Errorf("sim: mission start == goal (%d)", c.From)
	}
	if c.NumNPCs < 0 || c.NumPedestrians < 0 {
		return fmt.Errorf("sim: negative actor count")
	}
	if c.TimeoutSec < 0 {
		return fmt.Errorf("sim: negative timeout")
	}
	return nil
}

// withDefaults fills zero values.
func (c EpisodeConfig) withDefaults(routeLen float64) EpisodeConfig {
	if c.Weather == world.WeatherInvalid {
		c.Weather = world.WeatherClear
	}
	if c.GoalRadius == 0 {
		c.GoalRadius = 6
	}
	if c.TimeoutSec == 0 {
		// Generous budget: the nominal 5 m/s pace plus slack for junctions.
		c.TimeoutSec = routeLen/4.0 + 25
	}
	return c
}

// Status is an episode's lifecycle state.
type Status int

// Episode statuses. Enums start at one.
const (
	StatusInvalid Status = iota
	// StatusRunning means the mission is in progress.
	StatusRunning
	// StatusSuccess means the goal was reached within the time budget.
	StatusSuccess
	// StatusTimeout means the time budget expired before the goal.
	StatusTimeout
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusSuccess:
		return "success"
	case StatusTimeout:
		return "timeout"
	default:
		return "invalid"
	}
}
