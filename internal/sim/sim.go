package sim

import (
	"fmt"

	"github.com/avfi/avfi/internal/actors"
	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sensors"
	"github.com/avfi/avfi/internal/world"
)

// World is an immutable simulation arena: the generated town plus the
// shared renderer. It is safe to run many Episodes against one World
// concurrently; each Episode owns all mutable state.
type World struct {
	cfg      WorldConfig
	town     *world.Town
	renderer *render.Renderer
	lidar    *sensors.Lidar
}

// NewWorld generates the town for the given configuration.
func NewWorld(cfg WorldConfig) (*World, error) {
	town, err := world.GenerateTown(cfg.Town, rng.New(cfg.Seed).Split("town"))
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	w := &World{
		cfg:      cfg,
		town:     town,
		renderer: render.New(cfg.Camera, town),
	}
	if cfg.LidarBeams > 0 {
		rng := cfg.LidarRange
		if rng <= 0 {
			rng = 60
		}
		w.lidar = sensors.NewLidar(cfg.LidarBeams, rng)
	}
	return w, nil
}

// Config returns the configuration the world was generated from.
func (w *World) Config() WorldConfig { return w.cfg }

// Town returns the generated town.
func (w *World) Town() *world.Town { return w.town }

// Renderer returns the shared camera renderer.
func (w *World) Renderer() *render.Renderer { return w.renderer }

// Observation is what the ego vehicle's sensors deliver each frame — the
// payload the server ships to the driving agent (and the surface the
// input-fault injectors corrupt).
type Observation struct {
	// Image is the forward camera frame.
	Image *render.Image
	// Speed is the speedometer reading, m/s.
	Speed float64
	// GPS is the noisy position fix.
	GPS geom.Vec
	// Lidar is the planar scan (beam 0 forward, counterclockwise), nil
	// when the world has no LIDAR configured.
	Lidar []float64
	// Command is the high-level navigation command (conditional IL input).
	Command world.TurnKind
	// Frame and TimeSec stamp the observation.
	Frame   int
	TimeSec float64
	// Done and Status report episode termination.
	Done   bool
	Status Status
}

// Result summarizes a finished episode for the metrics engine.
type Result struct {
	Status     Status
	Success    bool
	DistanceM  float64
	DurationS  float64
	Frames     int
	Violations []Violation
	// RouteLengthM is the planned route length, for normalizing.
	RouteLengthM float64
}

// Episode is one mission: ego vehicle driving a route through traffic.
// Not safe for concurrent use.
type Episode struct {
	w   *World
	cfg EpisodeConfig

	route  *world.Route
	ego    physics.VehicleState
	params physics.VehicleParams
	npcs   []*actors.Vehicle
	peds   []*actors.Pedestrian

	gps   *sensors.GPS
	speed *sensors.Speedometer

	frame    int
	status   Status
	distance float64
	tracker  *violationTracker
	// prevPose restores the ego when a collision blocks movement.
	prevPose physics.VehicleState
}

// EgoParams returns the physical constants every episode's ego vehicle
// uses — available before any episode exists, so session clients can build
// safety monitors without holding the episode.
func (w *World) EgoParams() physics.VehicleParams { return physics.DefaultVehicleParams() }

// NewEpisode plans the mission route and spawns actors.
func (w *World) NewEpisode(cfg EpisodeConfig) (*Episode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	route, err := w.town.Net.PlanRoute(cfg.From, cfg.To)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	cfg = cfg.withDefaults(route.Length())

	root := rng.New(cfg.Seed)
	e := &Episode{
		w:       w,
		cfg:     cfg,
		route:   route,
		params:  physics.DefaultVehicleParams(),
		ego:     physics.VehicleState{Pose: route.Start()},
		gps:     sensors.NewGPS(0.4, 0.02, root.Split("gps")),
		speed:   sensors.NewSpeedometer(0.01, root.Split("speedometer")),
		status:  StatusRunning,
		tracker: newViolationTracker(),
	}
	e.prevPose = e.ego

	e.spawnNPCs(root.Split("npcs"))
	e.spawnPedestrians(root.Split("peds"))
	return e, nil
}

// spawnNPCs places NPC vehicles on random edges away from the ego start.
func (e *Episode) spawnNPCs(r *rng.Stream) {
	net := e.w.town.Net
	segs := net.Segments()
	if len(segs) == 0 {
		return
	}
	for i := 0; i < e.cfg.NumNPCs; i++ {
		for attempt := 0; attempt < 20; attempt++ {
			// Random directed edge.
			a := world.NodeID(r.Intn(net.NodeCount()))
			nbs := net.Neighbors(a)
			if len(nbs) == 0 {
				continue
			}
			b := nbs[r.Intn(len(nbs))]
			frac := r.Range(0.2, 0.8)
			v := actors.NewVehicle(e.w.town, a, b, frac, r.Range(5, 9), r.SplitN(uint64(i)))
			if v.State.Pose.Pos.Dist(e.ego.Pose.Pos) < 25 {
				continue
			}
			e.npcs = append(e.npcs, v)
			break
		}
	}
}

// spawnPedestrians places walkers on random sidewalks.
func (e *Episode) spawnPedestrians(r *rng.Stream) {
	net := e.w.town.Net
	for i := 0; i < e.cfg.NumPedestrians; i++ {
		for attempt := 0; attempt < 20; attempt++ {
			a := world.NodeID(r.Intn(net.NodeCount()))
			nbs := net.Neighbors(a)
			if len(nbs) == 0 {
				continue
			}
			b := nbs[r.Intn(len(nbs))]
			side := 1.0
			if r.Bool(0.5) {
				side = -1
			}
			p := actors.NewPedestrian(e.w.town, a, b, r.Range(0.1, 0.9), side, r.SplitN(uint64(i)))
			if p.State.Pos.Dist(e.ego.Pose.Pos) < 15 {
				continue
			}
			e.peds = append(e.peds, p)
			break
		}
	}
}

// Route returns the mission route (read-only).
func (e *Episode) Route() *world.Route { return e.route }

// EgoState returns the ego vehicle's true state (ground truth; the agent
// only sees sensors).
func (e *Episode) EgoState() physics.VehicleState { return e.ego }

// EgoParams returns the ego vehicle's physical constants.
func (e *Episode) EgoParams() physics.VehicleParams { return e.params }

// Frame returns the current frame number.
func (e *Episode) Frame() int { return e.frame }

// TimeSec returns the episode clock.
func (e *Episode) TimeSec() float64 { return float64(e.frame) * Dt }

// Done reports whether the episode has terminated.
func (e *Episode) Done() bool { return e.status != StatusRunning }

// Status returns the episode status.
func (e *Episode) Status() Status { return e.status }

// camPose is the hood camera pose.
func (e *Episode) camPose() geom.Pose {
	return geom.Pose{
		Pos:     e.ego.Pose.Advance(e.params.Wheelbase).Pos,
		Heading: e.ego.Pose.Heading,
	}
}

// obstacles returns all dynamic render/LIDAR boxes except the ego.
func (e *Episode) obstacles() []render.Obstacle {
	out := make([]render.Obstacle, 0, len(e.npcs)+len(e.peds))
	for _, v := range e.npcs {
		out = append(out, render.Obstacle{Box: v.OBB(), Height: 1.5, Kind: render.ObstacleVehicle})
	}
	for _, p := range e.peds {
		out = append(out, render.Obstacle{Box: p.OBB(), Height: 1.8, Kind: render.ObstaclePedestrian})
	}
	return out
}

// RenderObstacles returns the dynamic obstacle boxes (NPC vehicles and
// pedestrians) as the sensors see them; the expert controller and the
// LIDAR share this view.
func (e *Episode) RenderObstacles() []render.Obstacle { return e.obstacles() }

// Observe renders the current sensor frame. Call once per frame; rendering
// dominates the simulation cost.
func (e *Episode) Observe() Observation {
	scene := render.Scene{
		CamPose:   e.camPose(),
		Weather:   e.cfg.Weather,
		Obstacles: e.obstacles(),
		Frame:     e.frame,
	}
	s, _, _ := e.route.Project(e.ego.Pose.Pos)
	var lidar []float64
	if e.w.lidar != nil {
		lidar = e.LidarScan(e.w.lidar)
	}
	return Observation{
		Image:   e.w.renderer.Render(scene),
		Speed:   e.speed.Read(e.ego.Speed),
		GPS:     e.gps.Read(e.ego.Pose.Pos),
		Lidar:   lidar,
		Command: e.route.Command(s, 30),
		Frame:   e.frame,
		TimeSec: e.TimeSec(),
		Done:    e.Done(),
		Status:  e.status,
	}
}

// Step advances the world one frame under the given ego control. It is a
// no-op once the episode is done.
func (e *Episode) Step(ctl physics.Control) {
	if e.Done() {
		return
	}
	e.prevPose = e.ego
	before := e.ego.Pose.Pos

	// Ego dynamics.
	e.ego = physics.StepVehicle(e.ego, ctl, e.params, Dt)

	// NPC traffic: each yields to everything else, including the ego.
	egoBox := physics.VehicleOBB(e.ego, e.params)
	for i, v := range e.npcs {
		blockers := make([]geom.OBB, 0, len(e.npcs)+len(e.peds))
		blockers = append(blockers, egoBox)
		for j, o := range e.npcs {
			if j != i {
				blockers = append(blockers, o.OBB())
			}
		}
		for _, p := range e.peds {
			blockers = append(blockers, p.OBB())
		}
		v.Step(Dt, blockers)
	}
	for _, p := range e.peds {
		p.Step(Dt)
	}

	// Collision handling: buildings and vehicles block (inelastic stop);
	// pedestrians do not block.
	egoBox = physics.VehicleOBB(e.ego, e.params)
	hitStatic := e.w.town.CollidesBuilding(egoBox)
	hitVehicle := false
	for _, v := range e.npcs {
		if egoBox.Intersects(v.OBB()) {
			hitVehicle = true
			break
		}
	}
	if hitStatic || hitVehicle {
		// Revert to the pre-step pose and kill speed: the car has crashed
		// into something solid.
		e.ego = e.prevPose
		e.ego.Speed = 0
	}
	hitPed := false
	for _, p := range e.peds {
		if physics.VehicleHitsPedestrian(e.ego, e.params, p.State) {
			hitPed = true
			break
		}
	}

	e.frame++
	now := e.TimeSec()
	e.distance += e.ego.Pose.Pos.Dist(before)

	// Violation conditions on the post-step state.
	e.detectViolations(hitStatic, hitVehicle, hitPed, now)

	// Termination.
	if e.route.RemainingAt(e.progressS()) < 1 &&
		e.ego.Pose.Pos.Dist(e.route.Goal()) < e.cfg.GoalRadius {
		e.status = StatusSuccess
		return
	}
	if now >= e.cfg.TimeoutSec {
		e.status = StatusTimeout
	}
}

// progressS returns the ego's arc length along the route.
func (e *Episode) progressS() float64 {
	s, _, _ := e.route.Project(e.ego.Pose.Pos)
	return s
}

// detectViolations evaluates the paper's violation taxonomy for one frame.
func (e *Episode) detectViolations(hitStatic, hitVehicle, hitPed bool, now float64) {
	net := e.w.town.Net
	center := physics.VehicleOBB(e.ego, e.params).Pose.Pos

	// Lane violation: center of the car over the center line, i.e. on the
	// left half of the road relative to its travel direction. Junction
	// pads have no markings and are exempt (turning legitimately sweeps
	// across the geometric centerline there).
	laneViol := false
	if !net.NearNode(center, net.RoadHalfWidth()*2) {
		if lat, ok := net.AlignedRoadLateral(center, e.ego.Pose.Heading); ok {
			laneViol = lat > 0.3 // tolerance: touching the line isn't an event
		}
	}

	// Curb violation: vehicle center off the pavement.
	curbViol := !net.OnRoad(center)

	e.tracker.observe(ViolationLane, laneViol, now, center)
	e.tracker.observe(ViolationCurb, curbViol, now, center)
	e.tracker.observe(ViolationCollisionStatic, hitStatic, now, center)
	e.tracker.observe(ViolationCollisionVehicle, hitVehicle, now, center)
	e.tracker.observe(ViolationCollisionPedestrian, hitPed, now, center)
}

// Violations returns the debounced events so far.
func (e *Episode) Violations() []Violation { return e.tracker.Events() }

// Result summarizes the episode. Valid at any time; Success only after
// termination.
func (e *Episode) Result() Result {
	return Result{
		Status:       e.status,
		Success:      e.status == StatusSuccess,
		DistanceM:    e.distance,
		DurationS:    e.TimeSec(),
		Frames:       e.frame,
		Violations:   append([]Violation(nil), e.tracker.Events()...),
		RouteLengthM: e.route.Length(),
	}
}

// TopDownView renders the spectator (bird's-eye) image of the episode:
// town, route overlay, traffic, and the ego vehicle highlighted.
func (e *Episode) TopDownView(cfg render.TopDownConfig) *render.Image {
	return render.RenderTopDown(cfg, e.w.town, render.TopDownScene{
		Ego:       physics.VehicleOBB(e.ego, e.params),
		Obstacles: e.obstacles(),
		Route:     e.route,
	})
}

// LidarScan runs a LIDAR sweep from the ego's roof; exposed for the sensor
// suite and its fault injectors.
func (e *Episode) LidarScan(l *sensors.Lidar) []float64 {
	boxes := make([]geom.OBB, 0, len(e.npcs)+len(e.peds))
	for _, v := range e.npcs {
		boxes = append(boxes, v.OBB())
	}
	for _, p := range e.peds {
		boxes = append(boxes, p.OBB())
	}
	return l.Scan(e.w.town, e.ego.Pose, boxes)
}
