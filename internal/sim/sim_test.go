package sim

import (
	"math"
	"testing"

	"github.com/avfi/avfi/internal/actors"
	"github.com/avfi/avfi/internal/autopilot"
	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sensors"
	"github.com/avfi/avfi/internal/world"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(DefaultWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// missionPair picks a plannable mission.
func missionPair(t *testing.T, w *World, seed uint64) (world.NodeID, world.NodeID) {
	t.Helper()
	from, to, err := w.Town().RandomMission(rng.New(seed), 150)
	if err != nil {
		t.Fatal(err)
	}
	return from, to
}

// driveWithAutopilot runs an episode to completion under the oracle.
func driveWithAutopilot(t *testing.T, e *Episode) Result {
	t.Helper()
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())
	for !e.Done() {
		obs := obstacleBoxes(e)
		e.Step(pilot.Control(e.EgoState(), obs))
		if e.Frame() > FPS*600 {
			t.Fatal("episode ran far past any sane timeout")
		}
	}
	return e.Result()
}

func obstacleBoxes(e *Episode) []geom.OBB {
	var out []geom.OBB
	for _, o := range e.obstacles() {
		out = append(out, o.Box)
	}
	return out
}

func TestNewEpisodeValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := w.NewEpisode(EpisodeConfig{From: 0, To: 0}); err == nil {
		t.Error("same start/goal did not error")
	}
	if _, err := w.NewEpisode(EpisodeConfig{From: 0, To: 1, NumNPCs: -1}); err == nil {
		t.Error("negative NPCs did not error")
	}
	if _, err := w.NewEpisode(EpisodeConfig{From: 0, To: world.NodeID(999)}); err == nil {
		t.Error("bogus goal did not error")
	}
}

func TestAutopilotCompletesMissionCleanly(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 1)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := driveWithAutopilot(t, e)
	if !res.Success {
		t.Fatalf("autopilot failed mission: %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Errorf("autopilot committed violations: %v", res.Violations)
	}
	if res.DistanceM < res.RouteLengthM*0.8 {
		t.Errorf("distance %v suspiciously short for route %v", res.DistanceM, res.RouteLengthM)
	}
}

func TestAutopilotCompletesManyMissions(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mission drive is slow")
	}
	w := testWorld(t)
	for seed := uint64(2); seed < 7; seed++ {
		from, to := missionPair(t, w, seed)
		e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: seed * 100})
		if err != nil {
			t.Fatal(err)
		}
		res := driveWithAutopilot(t, e)
		if !res.Success {
			t.Errorf("mission %d->%d (seed %d) failed: %+v", from, to, seed, res.Status)
		}
		if len(res.Violations) > 0 {
			t.Errorf("mission %d->%d: autopilot violations %v", from, to, res.Violations)
		}
	}
}

func TestEpisodeDeterministic(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 3)
	run := func() Result {
		e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 42, NumNPCs: 3, NumPedestrians: 3})
		if err != nil {
			t.Fatal(err)
		}
		return driveWithAutopilot(t, e)
	}
	a, b := run(), run()
	if a.Frames != b.Frames || a.DistanceM != b.DistanceM || len(a.Violations) != len(b.Violations) {
		t.Errorf("episodes with same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTimeoutTriggersWithoutControl(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 4)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 5, TimeoutSec: 3})
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.Step(physics.Control{}) // parked
	}
	if e.Status() != StatusTimeout {
		t.Errorf("status = %v, want timeout", e.Status())
	}
	if res := e.Result(); res.Success {
		t.Error("parked episode reported success")
	}
}

func TestStepAfterDoneIsNoOp(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 5)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 6, TimeoutSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.Step(physics.Control{})
	}
	frames := e.Frame()
	e.Step(physics.Control{Throttle: 1})
	if e.Frame() != frames {
		t.Error("Step after done advanced the clock")
	}
}

func TestObserveFields(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 6)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 7, NumNPCs: 2, NumPedestrians: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := e.Observe()
	if obs.Image == nil || obs.Image.W != w.Renderer().Config().Width {
		t.Fatal("observation image missing or wrong size")
	}
	if obs.Command == world.TurnInvalid {
		t.Error("observation command invalid")
	}
	if obs.Done {
		t.Error("fresh episode reports done")
	}
	// GPS should be near the true position (sub-2m with default noise).
	if obs.GPS.Dist(e.EgoState().Pose.Pos) > 3 {
		t.Errorf("GPS reading %v far from truth %v", obs.GPS, e.EgoState().Pose.Pos)
	}
	// Ego parked: speedometer reads 0.
	if obs.Speed != 0 {
		t.Errorf("parked speed reading = %v", obs.Speed)
	}
}

func TestHardLeftCausesViolations(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 7)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 8, TimeoutSec: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Full throttle, hard left: must cross the center line and leave the road.
	for !e.Done() {
		e.Step(physics.Control{Steer: 1, Throttle: 1})
	}
	res := e.Result()
	if len(res.Violations) == 0 {
		t.Fatal("reckless driving produced no violations")
	}
	kinds := map[ViolationKind]bool{}
	for _, v := range res.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[ViolationLane] && !kinds[ViolationCurb] {
		t.Errorf("expected lane or curb violation, got %v", res.Violations)
	}
}

func TestViolationDebounce(t *testing.T) {
	tr := newViolationTracker()
	pos := geom.V(0, 0)
	// Condition held for 1s: one event.
	for f := 0; f < FPS; f++ {
		tr.observe(ViolationLane, true, float64(f)*Dt, pos)
	}
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("continuous condition produced %d events, want 1", n)
	}
	// Clears briefly (less than cooldown), returns: still one event.
	for f := FPS; f < FPS+5; f++ {
		tr.observe(ViolationLane, false, float64(f)*Dt, pos)
	}
	for f := FPS + 5; f < 2*FPS; f++ {
		tr.observe(ViolationLane, true, float64(f)*Dt, pos)
	}
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("blip produced %d events, want 1", n)
	}
	// Clears for > cooldown, returns: second event.
	gap := int(violationCooldownSec*FPS) + 3
	for f := 2 * FPS; f < 2*FPS+gap; f++ {
		tr.observe(ViolationLane, false, float64(f)*Dt, pos)
	}
	tr.observe(ViolationLane, true, float64(2*FPS+gap)*Dt, pos)
	if n := len(tr.Events()); n != 2 {
		t.Fatalf("separated episodes produced %d events, want 2", n)
	}
}

func TestViolationKindStringsAndAccidents(t *testing.T) {
	if !ViolationCollisionPedestrian.IsAccident() || !ViolationCollisionVehicle.IsAccident() || !ViolationCollisionStatic.IsAccident() {
		t.Error("collision kinds not accidents")
	}
	if ViolationLane.IsAccident() || ViolationCurb.IsAccident() {
		t.Error("non-collision kinds reported as accidents")
	}
	for k, want := range map[ViolationKind]string{
		ViolationLane: "lane", ViolationCurb: "curb",
		ViolationCollisionVehicle: "collision-vehicle", ViolationInvalid: "invalid",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusRunning: "running", StatusSuccess: "success",
		StatusTimeout: "timeout", StatusInvalid: "invalid",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestNPCsAndPedsSpawn(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 8)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 9, NumNPCs: 5, NumPedestrians: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.npcs) == 0 || len(e.peds) == 0 {
		t.Fatalf("spawned %d NPCs, %d peds", len(e.npcs), len(e.peds))
	}
	// None may spawn on top of the ego.
	for _, v := range e.npcs {
		if v.State.Pose.Pos.Dist(e.EgoState().Pose.Pos) < 20 {
			t.Error("NPC spawned too close to ego")
		}
	}
}

func TestCollisionWithNPCBlocksAndCounts(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 9)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 11, TimeoutSec: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a stationary NPC directly ahead of the ego on its lane.
	ahead := e.EgoState().Pose.Advance(12)
	npc := plantNPC(t, e, ahead)
	_ = npc
	// Drive straight into it.
	for !e.Done() && e.TimeSec() < 10 {
		e.Step(physics.Control{Throttle: 1})
	}
	res := e.Result()
	found := false
	for _, v := range res.Violations {
		if v.Kind == ViolationCollisionVehicle {
			found = true
		}
	}
	if !found {
		t.Errorf("head-on NPC collision not detected: %v", res.Violations)
	}
	// The crash must have blocked the ego (inelastic stop), so it cannot
	// be far past the NPC.
	if e.EgoState().Pose.Pos.Dist(ahead.Pos) > 20 {
		t.Error("ego drove through the NPC")
	}
}

// plantNPC inserts a parked NPC at the pose.
func plantNPC(t *testing.T, e *Episode, pose geom.Pose) *geom.OBB {
	t.Helper()
	v := actors.NewParked(e.w.town, pose)
	e.npcs = append(e.npcs, v)
	box := v.OBB()
	return &box
}

func TestLidarScanFromEpisode(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 10)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 12, NumNPCs: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := sensors.NewLidar(36, 80)
	ranges := e.LidarScan(l)
	if len(ranges) != 36 {
		t.Fatalf("beam count %d", len(ranges))
	}
	for _, r := range ranges {
		if r <= 0 || r > 80 || math.IsNaN(r) {
			t.Fatalf("bad lidar range %v", r)
		}
	}
}

func TestEpisodeConfigDefaults(t *testing.T) {
	c := EpisodeConfig{From: 0, To: 1}.withDefaults(400)
	if c.Weather != world.WeatherClear {
		t.Error("default weather not clear")
	}
	if c.TimeoutSec <= 0 || c.GoalRadius <= 0 {
		t.Error("defaults not filled")
	}
	// Longer routes get more time.
	c2 := EpisodeConfig{From: 0, To: 1}.withDefaults(800)
	if c2.TimeoutSec <= c.TimeoutSec {
		t.Error("timeout not scaled with route length")
	}
}

func TestWeatherAffectsObservation(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 11)
	mk := func(weather world.Weather) Observation {
		e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 13, Weather: weather})
		if err != nil {
			t.Fatal(err)
		}
		return e.Observe()
	}
	clear := mk(world.WeatherClear)
	fog := mk(world.WeatherFog)
	diff := 0
	for i := range clear.Image.Pix {
		if clear.Image.Pix[i] != fog.Image.Pix[i] {
			diff++
		}
	}
	if diff < len(clear.Image.Pix)/4 {
		t.Errorf("fog changed only %d/%d pixels", diff, len(clear.Image.Pix))
	}
}

func TestObservationHasLidar(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 12)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 14, NumNPCs: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := e.Observe()
	if len(obs.Lidar) != DefaultWorldConfig().LidarBeams {
		t.Fatalf("lidar beams = %d", len(obs.Lidar))
	}
	for i, r := range obs.Lidar {
		if r <= 0 || r > DefaultWorldConfig().LidarRange {
			t.Fatalf("beam %d = %v out of range", i, r)
		}
	}
}

func TestWorldWithoutLidar(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.LidarBeams = 0
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	from, to, err := w.Town().RandomMission(rng.New(15), 150)
	if err != nil {
		t.Fatal(err)
	}
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if obs := e.Observe(); obs.Lidar != nil {
		t.Error("lidar present with LidarBeams=0")
	}
}

func TestTopDownViewFromEpisode(t *testing.T) {
	w := testWorld(t)
	from, to := missionPair(t, w, 13)
	e, err := w.NewEpisode(EpisodeConfig{From: from, To: to, Seed: 17, NumNPCs: 2, NumPedestrians: 2})
	if err != nil {
		t.Fatal(err)
	}
	im := e.TopDownView(render.TopDownConfig{Width: 128, Height: 128})
	if im.W != 128 || im.H != 128 {
		t.Fatalf("top-down size %dx%d", im.W, im.H)
	}
	// The ego marker (bright yellow) must be present.
	found := false
	for y := 0; y < im.H && !found; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.RGB(y, x)
			if r > 0.9 && g > 0.85 && b < 0.3 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("ego marker missing from top-down view")
	}
}
