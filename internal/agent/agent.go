// Package agent implements the Autonomous Driving Agent (ADA): a
// conditional imitation-learning network in the style of Codevilla et al.
// (ICRA 2018), which the paper uses as the system under test.
//
// Architecture, mirroring the paper's Figure 1 ("Perception CNN" +
// measurement fusion + command-conditioned outputs):
//
//	camera image (3,H,W) --> conv trunk --> feature vector  \
//	                                                         concat --> per-command head --> (steer, target speed)
//	measured speed --------> dense embedding ---------------/
//
// One head exists per high-level navigation command (follow / left /
// right / straight) — the "conditional" part: the route planner's command
// selects which head drives. The head predicts steering plus a target
// speed; a longitudinal P controller converts target speed into
// throttle/brake (the speed-branch variant of Codevilla et al., which
// trains far more stably than raw throttle imitation).
//
// The agent is trained by imitating the internal/autopilot oracle, with
// steering perturbations during data collection so the network learns to
// recover from off-center states.
package agent

import (
	"fmt"

	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/nn"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/world"
)

// speedNorm normalizes speeds into roughly [0, 1] for network inputs and
// targets.
const speedNorm = 10.0

// commands is the fixed head order.
var commands = []world.TurnKind{world.TurnFollow, world.TurnLeft, world.TurnRight, world.TurnStraight}

// Config parameterizes the network.
type Config struct {
	// ImageW, ImageH must match the camera frames.
	ImageW, ImageH int
	// Conv1, Conv2 are the two conv layers' channel counts.
	Conv1, Conv2 int
	// FeatDim is the trunk's output feature size.
	FeatDim int
	// MeasDim is the measurement (speed) embedding size.
	MeasDim int
	// HeadHidden is each command head's hidden width.
	HeadHidden int
	// UseRNN inserts a recurrent cell between the trunk features and the
	// heads, giving the agent the temporal stage in the paper's Figure 1.
	UseRNN bool
	// RNNHidden is the recurrent state size when UseRNN is set.
	RNNHidden int
	// Seed initializes weights deterministically.
	Seed uint64
}

// DefaultConfig matches the default camera (64x48) with a compact net.
func DefaultConfig() Config {
	return Config{
		ImageW: 64, ImageH: 48,
		Conv1: 8, Conv2: 12,
		FeatDim:    64,
		MeasDim:    8,
		HeadHidden: 32,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ImageW < 8 || c.ImageH < 8 {
		return fmt.Errorf("agent: image %dx%d too small", c.ImageW, c.ImageH)
	}
	if c.Conv1 <= 0 || c.Conv2 <= 0 || c.FeatDim <= 0 || c.MeasDim <= 0 || c.HeadHidden <= 0 {
		return fmt.Errorf("agent: non-positive layer size in %+v", c)
	}
	if c.UseRNN && c.RNNHidden <= 0 {
		return fmt.Errorf("agent: UseRNN with RNNHidden %d", c.RNNHidden)
	}
	return nil
}

// Agent is the ADA. Not safe for concurrent use — Clone per goroutine.
type Agent struct {
	cfg   Config
	trunk *nn.Network
	meas  *nn.Network
	heads map[world.TurnKind]*nn.Network
	// headIn is the concatenated feature+measurement width.
	headIn int
}

// New builds an agent with freshly initialized weights.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	conv1 := nn.NewConv2D(3, cfg.ImageH, cfg.ImageW, cfg.Conv1, 3, 2, 1).InitHe(r.Split("conv1"))
	c1, h1, w1 := conv1.OutShape()
	_ = c1
	conv2 := nn.NewConv2D(cfg.Conv1, h1, w1, cfg.Conv2, 3, 2, 1).InitHe(r.Split("conv2"))
	c2, h2, w2 := conv2.OutShape()

	trunkLayers := []nn.Layer{
		conv1,
		nn.NewReLU(),
		conv2,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(c2*h2*w2, cfg.FeatDim).InitHe(r.Split("trunk-fc")),
		nn.NewReLU(),
	}
	if cfg.UseRNN {
		trunkLayers = append(trunkLayers,
			nn.NewRNNCell(cfg.FeatDim, cfg.RNNHidden).InitXavier(r.Split("rnn")))
	}
	trunk := nn.NewNetwork(trunkLayers...)

	meas := nn.NewNetwork(
		nn.NewDense(1, cfg.MeasDim).InitXavier(r.Split("meas")),
		nn.NewTanh(),
	)

	featOut := cfg.FeatDim
	if cfg.UseRNN {
		featOut = cfg.RNNHidden
	}
	headIn := featOut + cfg.MeasDim
	heads := make(map[world.TurnKind]*nn.Network, len(commands))
	for _, cmd := range commands {
		heads[cmd] = nn.NewNetwork(
			nn.NewDense(headIn, cfg.HeadHidden).InitHe(r.Split("head-"+cmd.String())),
			nn.NewReLU(),
			nn.NewDense(cfg.HeadHidden, 2).InitXavier(r.Split("head-out-"+cmd.String())),
		)
	}
	return &Agent{cfg: cfg, trunk: trunk, meas: meas, heads: heads, headIn: headIn}, nil
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Clone returns an independent deep copy (for concurrent episodes and for
// per-episode weight fault injection).
func (a *Agent) Clone() *Agent {
	heads := make(map[world.TurnKind]*nn.Network, len(a.heads))
	for k, h := range a.heads {
		heads[k] = h.Clone()
	}
	return &Agent{
		cfg:    a.cfg,
		trunk:  a.trunk.Clone(),
		meas:   a.meas.Clone(),
		heads:  heads,
		headIn: a.headIn,
	}
}

// Reset clears recurrent state at episode boundaries.
func (a *Agent) Reset() {
	for _, l := range a.trunk.Layers() {
		if c, ok := l.(*nn.RNNCell); ok {
			c.ResetState()
		}
	}
}

// forward runs the full network for one frame, returning the prediction
// vector (steer, targetSpeedNorm) and the intermediates needed by training.
func (a *Agent) forward(img *tensor.Tensor, speed float64, cmd world.TurnKind) (pred, feat, measOut *tensor.Tensor, err error) {
	norm := img.Clone()
	for i, v := range norm.Data() {
		norm.Data()[i] = v - 0.5
	}
	feat, err = a.trunk.Forward(norm)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("agent: trunk: %w", err)
	}
	speedIn := tensor.MustFromSlice([]float64{speed / speedNorm}, 1)
	measOut, err = a.meas.Forward(speedIn)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("agent: meas: %w", err)
	}
	z := tensor.New(a.headIn)
	copy(z.Data(), feat.Data())
	copy(z.Data()[feat.Len():], measOut.Data())

	head := a.head(cmd)
	pred, err = head.Forward(z)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("agent: head %v: %w", cmd, err)
	}
	return pred, feat, measOut, nil
}

// head maps a command to its branch, defaulting unknown commands to Follow
// (an out-of-range command byte — e.g. after a hardware fault on the wire —
// must not crash the agent).
func (a *Agent) head(cmd world.TurnKind) *nn.Network {
	if h, ok := a.heads[cmd]; ok {
		return h
	}
	return a.heads[world.TurnFollow]
}

// speedControlGain converts target-speed error to throttle/brake.
const speedControlGain = 0.6

// Act computes the control for one frame. Non-finite network outputs (a
// consequence of injected weight faults) degrade to zeroed commands rather
// than panicking — the physical actuator layer clamps again regardless.
func (a *Agent) Act(img *render.Image, speed float64, cmd world.TurnKind) (physics.Control, error) {
	pred, _, _, err := a.forward(img.ToTensor(), speed, cmd)
	if err != nil {
		return physics.Control{}, err
	}
	steer := pred.At(0)
	targetSpeed := geom.Clamp(pred.At(1)*speedNorm, 0, 9)

	errV := targetSpeed - speed
	ctl := physics.Control{Steer: steer}
	if errV >= 0 {
		ctl.Throttle = speedControlGain * errV
	} else {
		ctl.Brake = -speedControlGain * errV
	}
	ctl = ctl.Sanitize()
	// Sanitize maps non-finite to zero; additionally bound steering jitter.
	ctl.Steer = geom.Clamp(ctl.Steer, -1, 1)

	// Anti-inertia creep: imitation agents latch onto "speed ~ 0 implies
	// stay stopped" (Codevilla et al. report the same failure). Unless the
	// network is actively braking, a near-stationary agent creeps forward
	// so the perception loop regains signal.
	if speed < 1.2 && ctl.Brake < 0.4 {
		if ctl.Throttle < 0.5 {
			ctl.Throttle = 0.5
		}
		ctl.Brake = 0
	}
	return ctl, nil
}

// VisitParams walks every parameter tensor with a component-qualified
// name: the ML fault injector's localization hook. Components are visited
// in a fixed order (trunk, meas, then heads in command order).
func (a *Agent) VisitParams(fn func(component string, layer int, name string, t *tensor.Tensor)) {
	a.trunk.VisitParams(func(layer int, name string, t *tensor.Tensor) {
		fn("trunk", layer, name, t)
	})
	a.meas.VisitParams(func(layer int, name string, t *tensor.Tensor) {
		fn("meas", layer, name, t)
	})
	for _, cmd := range commands {
		h := a.heads[cmd]
		h.VisitParams(func(layer int, name string, t *tensor.Tensor) {
			fn("head-"+cmd.String(), layer, name, t)
		})
	}
}

// ParamCount returns the total scalar parameter count.
func (a *Agent) ParamCount() int {
	total := a.trunk.ParamCount() + a.meas.ParamCount()
	for _, h := range a.heads {
		total += h.ParamCount()
	}
	return total
}

// Networks returns the component networks keyed by name, for training and
// serialization.
func (a *Agent) Networks() map[string]*nn.Network {
	out := map[string]*nn.Network{"trunk": a.trunk, "meas": a.meas}
	for _, cmd := range commands {
		out["head-"+cmd.String()] = a.heads[cmd]
	}
	return out
}
