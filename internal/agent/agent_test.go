package agent

import (
	"bytes"
	"math"
	"testing"

	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/world"
)

// tinyConfig keeps unit tests fast: a 16x12 camera and a small net.
func tinyConfig() Config {
	return Config{
		ImageW: 16, ImageH: 12,
		Conv1: 4, Conv2: 6,
		FeatDim: 16, MeasDim: 4, HeadHidden: 8,
		Seed: 3,
	}
}

func tinyImage(seed uint64, w, h int) *render.Image {
	r := rng.New(seed)
	im := render.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = r.Float64()
	}
	return im
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{ImageW: 4, ImageH: 48, Conv1: 8, Conv2: 8, FeatDim: 8, MeasDim: 4, HeadHidden: 8},
		{ImageW: 64, ImageH: 48, Conv1: 0, Conv2: 8, FeatDim: 8, MeasDim: 4, HeadHidden: 8},
		{ImageW: 64, ImageH: 48, Conv1: 8, Conv2: 8, FeatDim: 8, MeasDim: 4, HeadHidden: 8, UseRNN: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestActProducesSaneControls(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := a.Act(tinyImage(1, 16, 12), 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Steer < -1 || ctl.Steer > 1 || ctl.Throttle < 0 || ctl.Throttle > 1 || ctl.Brake < 0 || ctl.Brake > 1 {
		t.Errorf("control out of range: %+v", ctl)
	}
}

func TestActDeterministic(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(2, 16, 12)
	c1, err := a.Act(img, 4, world.TurnLeft)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.Act(img, 4, world.TurnLeft)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("Act not deterministic")
	}
}

func TestHeadsAreConditioned(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(3, 16, 12)
	cl, err := a.Act(img, 5, world.TurnLeft)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := a.Act(img, 5, world.TurnRight)
	if err != nil {
		t.Fatal(err)
	}
	if cl == cr {
		t.Error("left and right heads produced identical controls on random weights")
	}
}

func TestUnknownCommandFallsBackToFollow(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(4, 16, 12)
	cFollow, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	cBad, err := a.Act(img, 5, world.TurnKind(99))
	if err != nil {
		t.Fatal(err)
	}
	if cFollow != cBad {
		t.Error("unknown command did not fall back to follow head")
	}
}

func TestCorruptWeightsDegradeGracefully(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Poison every trunk weight with Inf — Act must not panic and must
	// return sanitized (finite) controls.
	a.VisitParams(func(component string, layer int, name string, v *tensor.Tensor) {
		if component == "trunk" {
			v.Fill(math.Inf(1))
		}
	})
	ctl, err := a.Act(tinyImage(5, 16, 12), 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ctl.Steer) || math.IsInf(ctl.Steer, 0) {
		t.Errorf("corrupted agent produced non-finite control: %+v", ctl)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(6, 16, 12)
	before, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	cl := a.Clone()
	cl.VisitParams(func(_ string, _ int, _ string, v *tensor.Tensor) { v.Fill(0) })
	after, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("mutating clone changed the original")
	}
}

func TestVisitParamsCoversAllComponents(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	total := 0
	a.VisitParams(func(component string, _ int, _ string, v *tensor.Tensor) {
		seen[component]++
		total += v.Len()
	})
	for _, want := range []string{"trunk", "meas", "head-follow", "head-left", "head-right", "head-straight"} {
		if seen[want] == 0 {
			t.Errorf("component %q not visited", want)
		}
	}
	if total != a.ParamCount() {
		t.Errorf("visited %d params, ParamCount says %d", total, a.ParamCount())
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic imitation task: steer toward the bright side of the image.
	r := rng.New(10)
	var data []Sample
	for i := 0; i < 200; i++ {
		im := tensor.New(3, cfg.ImageH, cfg.ImageW)
		bright := r.Bool(0.5)
		for c := 0; c < 3; c++ {
			for y := 0; y < cfg.ImageH; y++ {
				for x := 0; x < cfg.ImageW; x++ {
					v := 0.2
					if (bright && x >= cfg.ImageW/2) || (!bright && x < cfg.ImageW/2) {
						v = 0.9
					}
					im.Set(v+r.Range(-0.05, 0.05), c, y, x)
				}
			}
		}
		steer := 0.5
		if bright {
			steer = -0.5
		}
		data = append(data, Sample{
			Image: im, Speed: 5, Command: world.TurnFollow,
			Steer: steer, TargetSpeed: 6,
		})
	}
	tc := TrainConfig{Epochs: 6, BatchSize: 8, LR: 2e-3, SteerWeight: 1, SpeedWeight: 0.4, Seed: 1}
	before, err := a.EvalLoss(data, tc)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := a.Train(data, tc)
	if err != nil {
		t.Fatal(err)
	}
	after, err := a.EvalLoss(data, tc)
	if err != nil {
		t.Fatal(err)
	}
	if after > before*0.3 {
		t.Errorf("training ineffective: loss %v -> %v (history %v)", before, after, hist)
	}
}

func TestTrainValidation(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty dataset did not error")
	}
	s := Sample{Image: tensor.New(3, 12, 16), Command: world.TurnFollow}
	if _, err := a.Train([]Sample{s}, TrainConfig{Epochs: 0, BatchSize: 4, LR: 0.1}); err == nil {
		t.Error("zero epochs did not error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(7, 16, 12)
	want, err := a.Act(img, 5, world.TurnRight)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Act(img, 5, world.TurnRight)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("loaded agent acts differently: %+v vs %+v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage load did not error")
	}
}

func TestRNNAgentStateful(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseRNN = true
	cfg.RNNHidden = 8
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(8, 16, 12)
	c1, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("RNN agent produced identical outputs for consecutive frames")
	}
	a.Reset()
	c3, err := a.Act(img, 5, world.TurnFollow)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c3 {
		t.Error("Reset did not restore initial recurrent behaviour")
	}
}

func TestExpertControlMapping(t *testing.T) {
	steer, tgt := ExpertControl(physicsControl(0.25), 5)
	if steer != 0.25 || tgt != 0.5 {
		t.Errorf("ExpertControl = %v, %v", steer, tgt)
	}
}
