package agent

import (
	"fmt"
	"sync"

	"github.com/avfi/avfi/internal/sim"
)

// PretrainSpec names one (world, agent, data, training) combination for the
// process-wide pretrained cache. Campaign code, benchmarks and examples all
// evaluate the same trained agent, so training cost is paid once per
// process.
type PretrainSpec struct {
	Missions int
	Collect  CollectConfig
	Train    TrainConfig
	Agent    Config
	// DataSeed drives mission sampling and perturbations.
	DataSeed uint64
}

// DefaultPretrainSpec is the training recipe behind every paper-figure
// experiment in this repository.
func DefaultPretrainSpec() PretrainSpec {
	return PretrainSpec{
		Missions: 10,
		Collect:  DefaultCollectConfig(),
		Train:    DefaultTrainConfig(),
		Agent:    DefaultConfig(),
		DataSeed: 99,
	}
}

var (
	pretrainMu    sync.Mutex
	pretrainCache = map[string]*Agent{}
)

// Pretrained returns the trained agent for (world, spec), training it on
// first use and caching it for the rest of the process. The returned agent
// is shared — Clone before mutating or driving.
func Pretrained(w *sim.World, spec PretrainSpec) (*Agent, error) {
	key := fmt.Sprintf("%+v|world=%+v", spec, wKey(w))
	pretrainMu.Lock()
	defer pretrainMu.Unlock()
	if a, ok := pretrainCache[key]; ok {
		return a, nil
	}
	a, err := TrainNew(w, spec)
	if err != nil {
		return nil, err
	}
	pretrainCache[key] = a
	return a, nil
}

// TrainNew collects demonstrations on the world and trains a fresh agent
// (no caching).
func TrainNew(w *sim.World, spec PretrainSpec) (*Agent, error) {
	cam := w.Renderer().Config()
	spec.Agent.ImageW = cam.Width
	spec.Agent.ImageH = cam.Height

	data, err := CollectDataset(w, spec.Missions, spec.DataSeed, spec.Collect)
	if err != nil {
		return nil, fmt.Errorf("agent: pretrain: %w", err)
	}
	a, err := New(spec.Agent)
	if err != nil {
		return nil, fmt.Errorf("agent: pretrain: %w", err)
	}
	if _, err := a.Train(data, spec.Train); err != nil {
		return nil, fmt.Errorf("agent: pretrain: %w", err)
	}
	return a, nil
}

// wKey summarizes a world's identity for the cache key.
func wKey(w *sim.World) string {
	t := w.Town()
	return fmt.Sprintf("nodes=%d,edges=%d,buildings=%d",
		t.Net.NodeCount(), t.Net.EdgeCount(), len(t.Buildings))
}
