package agent

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/avfi/avfi/internal/nn"
)

// fileFormat is the on-disk envelope: config plus each component network's
// serialized bytes.
type fileFormat struct {
	Cfg        Config
	Components map[string][]byte
}

// Save writes the agent (config + all weights) to w.
func (a *Agent) Save(w io.Writer) error {
	ff := fileFormat{Cfg: a.cfg, Components: make(map[string][]byte)}
	for name, net := range a.Networks() {
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			return fmt.Errorf("agent: save %s: %w", name, err)
		}
		ff.Components[name] = buf.Bytes()
	}
	if err := gob.NewEncoder(w).Encode(ff); err != nil {
		return fmt.Errorf("agent: save: %w", err)
	}
	return nil
}

// Load reads an agent saved with Save.
func Load(r io.Reader) (*Agent, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("agent: load: %w", err)
	}
	a, err := New(ff.Cfg)
	if err != nil {
		return nil, fmt.Errorf("agent: load: %w", err)
	}
	load := func(name string) (*nn.Network, error) {
		raw, ok := ff.Components[name]
		if !ok {
			return nil, fmt.Errorf("agent: load: missing component %q", name)
		}
		return nn.Load(bytes.NewReader(raw))
	}
	if a.trunk, err = load("trunk"); err != nil {
		return nil, err
	}
	if a.meas, err = load("meas"); err != nil {
		return nil, err
	}
	for _, cmd := range commands {
		h, err := load("head-" + cmd.String())
		if err != nil {
			return nil, err
		}
		a.heads[cmd] = h
	}
	return a, nil
}
