package agent

import (
	"fmt"

	"github.com/avfi/avfi/internal/autopilot"
	"github.com/avfi/avfi/internal/geom"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/world"
)

// Sample is one imitation-learning training example.
type Sample struct {
	// Image is the camera frame as a (3,H,W) tensor.
	Image *tensor.Tensor
	// Speed is the measured speed, m/s.
	Speed float64
	// Command is the navigation command active at the frame.
	Command world.TurnKind
	// Steer is the expert's steering in [-1, 1].
	Steer float64
	// TargetSpeed is the expert's speed a short horizon later, m/s — the
	// speed-branch supervision signal.
	TargetSpeed float64
}

// CollectConfig tunes demonstration collection.
type CollectConfig struct {
	// PerturbProb is the per-frame probability of starting a steering
	// perturbation (the recovery-data trick: the expert's corrective label
	// is recorded while the car is pushed off-center).
	PerturbProb float64
	// PerturbFrames is how long each perturbation lasts.
	PerturbFrames int
	// PerturbMag is the magnitude of the steering offset.
	PerturbMag float64
	// SpeedLookahead is the supervision horizon for TargetSpeed, frames.
	SpeedLookahead int
	// KeepEvery subsamples frames (2 keeps every other frame).
	KeepEvery int
}

// DefaultCollectConfig returns the collection setup used for the
// experiments' pretrained agent.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		PerturbProb:    0.05,
		PerturbFrames:  6,
		PerturbMag:     0.45,
		SpeedLookahead: 5,
		KeepEvery:      2,
	}
}

// CollectEpisode drives one episode with the oracle autopilot (plus
// injected steering perturbations) and returns the recorded demonstrations.
func CollectEpisode(e *sim.Episode, cfg CollectConfig, r *rng.Stream) ([]Sample, error) {
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())
	if cfg.KeepEvery <= 0 {
		cfg.KeepEvery = 1
	}

	type frameRec struct {
		img     *tensor.Tensor
		speed   float64
		cmd     world.TurnKind
		steer   float64
		trueV   float64
		sampled bool
	}
	var recs []frameRec

	perturbLeft := 0
	perturbOffset := 0.0
	frame := 0
	for !e.Done() {
		obs := e.Observe()
		ctl := pilot.Control(e.EgoState(), obstacleBoxes(e))

		recs = append(recs, frameRec{
			img:     obs.Image.ToTensor(),
			speed:   obs.Speed,
			cmd:     obs.Command,
			steer:   ctl.Steer,
			trueV:   e.EgoState().Speed,
			sampled: frame%cfg.KeepEvery == 0,
		})

		// Perturbation state machine: push the wheel off the expert's
		// command; the recorded label stays the expert's.
		if perturbLeft > 0 {
			perturbLeft--
			ctl.Steer = geom.Clamp(ctl.Steer+perturbOffset, -1, 1)
		} else if r.Bool(cfg.PerturbProb) {
			perturbLeft = cfg.PerturbFrames
			perturbOffset = cfg.PerturbMag
			if r.Bool(0.5) {
				perturbOffset = -perturbOffset
			}
		}
		e.Step(ctl)
		frame++
		if frame > sim.FPS*600 {
			return nil, fmt.Errorf("agent: collection episode exceeded 10 simulated minutes")
		}
	}

	// Build samples with the future-speed target.
	look := cfg.SpeedLookahead
	if look < 0 {
		look = 0
	}
	var out []Sample
	for i, rec := range recs {
		if !rec.sampled {
			continue
		}
		tgtIdx := i + look
		if tgtIdx >= len(recs) {
			tgtIdx = len(recs) - 1
		}
		out = append(out, Sample{
			Image:       rec.img,
			Speed:       rec.speed,
			Command:     rec.cmd,
			Steer:       rec.steer,
			TargetSpeed: recs[tgtIdx].trueV,
		})
	}
	return out, nil
}

// obstacleBoxes lists every dynamic collision box the expert must respect.
func obstacleBoxes(e *sim.Episode) []geom.OBB {
	var out []geom.OBB
	for _, o := range e.RenderObstacles() {
		out = append(out, o.Box)
	}
	return out
}

// CollectDataset runs several demonstration missions over a world and
// pools the samples.
func CollectDataset(w *sim.World, missions int, seed uint64, cfg CollectConfig) ([]Sample, error) {
	root := rng.New(seed)
	var all []Sample
	for m := 0; m < missions; m++ {
		from, to, err := w.Town().RandomMission(root.Split(fmt.Sprintf("mission-%d", m)), 150)
		if err != nil {
			return nil, fmt.Errorf("agent: dataset mission %d: %w", m, err)
		}
		e, err := w.NewEpisode(sim.EpisodeConfig{
			From: from, To: to,
			Seed: root.Split(fmt.Sprintf("episode-%d", m)).Uint64(),
		})
		if err != nil {
			return nil, fmt.Errorf("agent: dataset mission %d: %w", m, err)
		}
		samples, err := CollectEpisode(e, cfg, root.Split(fmt.Sprintf("perturb-%d", m)))
		if err != nil {
			return nil, err
		}
		all = append(all, samples...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("agent: dataset empty after %d missions", missions)
	}
	return all, nil
}

// ExpertControl converts an expert physics control plus measured speed into
// the (steer, targetSpeedNorm) supervision pair — exposed for tests.
func ExpertControl(ctl physics.Control, futureSpeed float64) (steer, targetNorm float64) {
	return ctl.Steer, futureSpeed / speedNorm
}
