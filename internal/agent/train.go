package agent

import (
	"fmt"

	"github.com/avfi/avfi/internal/nn"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/world"
)

// TrainConfig tunes imitation-learning optimization.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// SteerWeight and SpeedWeight balance the two-task loss.
	SteerWeight float64
	SpeedWeight float64
	// SpeedDropout zeroes the speed input with this probability during
	// training, weakening the speed->target-speed shortcut behind the IL
	// inertia problem.
	SpeedDropout float64
	// BalanceCommands oversamples junction (left/right/straight) samples
	// so the turn heads see as much data as the follow head.
	BalanceCommands bool
	// Seed shuffles batches deterministically.
	Seed uint64
}

// DefaultTrainConfig returns the optimization setup for the pretrained
// experiment agent.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:          7,
		BatchSize:       16,
		LR:              1e-3,
		SteerWeight:     1.0,
		SpeedWeight:     0.4,
		SpeedDropout:    0.1,
		BalanceCommands: true,
		Seed:            7,
	}
}

// Train fits the agent to the demonstrations and returns the mean training
// loss per epoch.
func (a *Agent) Train(data []Sample, tc TrainConfig) ([]float64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("agent: empty training set")
	}
	if tc.Epochs <= 0 || tc.BatchSize <= 0 || tc.LR <= 0 {
		return nil, fmt.Errorf("agent: bad train config %+v", tc)
	}
	if tc.SteerWeight <= 0 {
		tc.SteerWeight = 1
	}
	if tc.SpeedWeight <= 0 {
		tc.SpeedWeight = 0.4
	}

	opt := nn.NewAdam(tc.LR)
	params := a.allParams()
	r := rng.New(tc.Seed)
	order := trainingOrder(data, tc.BalanceCommands)

	history := make([]float64, 0, tc.Epochs)
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		inBatch := 0
		a.zeroGrads()
		for _, idx := range order {
			s := data[idx]
			if tc.SpeedDropout > 0 && r.Bool(tc.SpeedDropout) {
				s.Speed = 0
			}
			loss, err := a.accumulate(s, tc)
			if err != nil {
				return nil, err
			}
			epochLoss += loss
			inBatch++
			if inBatch == tc.BatchSize {
				scaleGrads(params, 1/float64(inBatch))
				opt.Step(params)
				a.zeroGrads()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			scaleGrads(params, 1/float64(inBatch))
			opt.Step(params)
			a.zeroGrads()
		}
		history = append(history, epochLoss/float64(len(order)))
	}
	return history, nil
}

// trainingOrder builds the index sequence for one epoch. With balancing,
// junction samples are replicated until they roughly match the follow-lane
// share (capped at 4x so a single turn isn't memorized).
func trainingOrder(data []Sample, balance bool) []int {
	order := make([]int, 0, len(data))
	for i := range data {
		order = append(order, i)
	}
	if !balance {
		return order
	}
	follow, turns := 0, 0
	for _, s := range data {
		if s.Command == world.TurnFollow {
			follow++
		} else {
			turns++
		}
	}
	if turns == 0 || follow == 0 {
		return order
	}
	extra := follow/turns - 1
	if extra > 3 {
		extra = 3
	}
	for rep := 0; rep < extra; rep++ {
		for i, s := range data {
			if s.Command != world.TurnFollow {
				order = append(order, i)
			}
		}
	}
	return order
}

// accumulate runs one sample forward/backward, adding gradients.
func (a *Agent) accumulate(s Sample, tc TrainConfig) (float64, error) {
	a.Reset() // single-frame training: recurrent state starts clean
	pred, feat, measOut, err := a.forward(s.Image, s.Speed, s.Command)
	if err != nil {
		return 0, err
	}
	tgtSteer := s.Steer
	tgtSpeed := s.TargetSpeed / speedNorm

	dSteer := pred.At(0) - tgtSteer
	dSpeed := pred.At(1) - tgtSpeed
	loss := tc.SteerWeight*dSteer*dSteer + tc.SpeedWeight*dSpeed*dSpeed

	grad := tensor.MustFromSlice([]float64{
		2 * tc.SteerWeight * dSteer,
		2 * tc.SpeedWeight * dSpeed,
	}, 2)

	head := a.head(s.Command)
	dz, err := head.Backward(grad)
	if err != nil {
		return 0, err
	}
	// Split the concat gradient back into trunk and measurement parts.
	df := tensor.New(feat.Len())
	copy(df.Data(), dz.Data()[:feat.Len()])
	dm := tensor.New(measOut.Len())
	copy(dm.Data(), dz.Data()[feat.Len():])

	if _, err := a.trunk.Backward(df); err != nil {
		return 0, err
	}
	if _, err := a.meas.Backward(dm); err != nil {
		return 0, err
	}
	return loss, nil
}

// allParams collects every component's parameters once.
func (a *Agent) allParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, a.trunk.Params()...)
	ps = append(ps, a.meas.Params()...)
	for _, cmd := range commands {
		ps = append(ps, a.heads[cmd].Params()...)
	}
	return ps
}

func (a *Agent) zeroGrads() {
	a.trunk.ZeroGrad()
	a.meas.ZeroGrad()
	for _, h := range a.heads {
		h.ZeroGrad()
	}
}

func scaleGrads(params []*nn.Param, s float64) {
	for _, p := range params {
		p.Grad.ScaleInPlace(s)
	}
}

// EvalLoss measures the weighted loss over a dataset without training.
func (a *Agent) EvalLoss(data []Sample, tc TrainConfig) (float64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("agent: empty eval set")
	}
	var total float64
	for _, s := range data {
		a.Reset()
		pred, _, _, err := a.forward(s.Image, s.Speed, s.Command)
		if err != nil {
			return 0, err
		}
		dSteer := pred.At(0) - s.Steer
		dSpeed := pred.At(1) - s.TargetSpeed/speedNorm
		total += tc.SteerWeight*dSteer*dSteer + tc.SpeedWeight*dSpeed*dSpeed
	}
	return total / float64(len(data)), nil
}
