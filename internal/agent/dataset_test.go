package agent

import (
	"testing"

	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/world"
)

func physicsControl(steer float64) physics.Control {
	return physics.Control{Steer: steer}
}

// smallWorld builds a compact world with a small camera so collection tests
// stay fast.
func smallWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultWorldConfig()
	cfg.Town.GridW, cfg.Town.GridH = 3, 3
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	w, err := sim.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCollectEpisodeProducesSamples(t *testing.T) {
	w := smallWorld(t)
	from, to, err := w.Town().RandomMission(rng.New(1), 120)
	if err != nil {
		t.Fatal(err)
	}
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := CollectEpisode(e, DefaultCollectConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 50 {
		t.Fatalf("only %d samples collected", len(samples))
	}
	for i, s := range samples {
		if s.Image == nil || s.Image.Dim(1) != 12 || s.Image.Dim(2) != 16 {
			t.Fatalf("sample %d image bad", i)
		}
		if s.Steer < -1 || s.Steer > 1 {
			t.Fatalf("sample %d steer %v out of range", i, s.Steer)
		}
		if s.TargetSpeed < 0 || s.TargetSpeed > 25 {
			t.Fatalf("sample %d target speed %v out of range", i, s.TargetSpeed)
		}
		if s.Command == world.TurnInvalid {
			t.Fatalf("sample %d has invalid command", i)
		}
	}
}

func TestCollectEpisodeKeepEverySubsamples(t *testing.T) {
	w := smallWorld(t)
	from, to, err := w.Town().RandomMission(rng.New(4), 120)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(keepEvery int) int {
		e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultCollectConfig()
		cfg.KeepEvery = keepEvery
		cfg.PerturbProb = 0 // identical trajectories
		s, err := CollectEpisode(e, cfg, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		return len(s)
	}
	all := collect(1)
	half := collect(2)
	if half < all/3 || half > all/2+2 {
		t.Errorf("KeepEvery=2 kept %d of %d", half, all)
	}
}

func TestCollectDatasetPoolsMissions(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultCollectConfig()
	cfg.KeepEvery = 4
	data, err := CollectDataset(w, 2, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Errorf("dataset only %d samples from 2 missions", len(data))
	}
	// Commands should include at least follow plus some turn.
	kinds := map[world.TurnKind]bool{}
	for _, s := range data {
		kinds[s.Command] = true
	}
	if !kinds[world.TurnFollow] {
		t.Error("dataset has no follow samples")
	}
	if len(kinds) < 2 {
		t.Error("dataset has no junction commands")
	}
}

func TestCollectDeterministic(t *testing.T) {
	w := smallWorld(t)
	run := func() int {
		data, err := CollectDataset(w, 1, 9, DefaultCollectConfig())
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	if run() != run() {
		t.Error("collection not deterministic")
	}
}
