// Micro-benchmarks for the substrate hot paths: rendering, the agent
// network, physics stepping, protocol codec, and the simulation loop.
// These bound the cost model behind the figure benches (an episode is
// render + inference + physics per frame at 15 FPS).
package avfi_test

import (
	"sync"
	"testing"

	"github.com/avfi/avfi/internal/agent"
	"github.com/avfi/avfi/internal/autopilot"
	"github.com/avfi/avfi/internal/fault/imagefault"
	"github.com/avfi/avfi/internal/nn"
	"github.com/avfi/avfi/internal/physics"
	"github.com/avfi/avfi/internal/proto"
	"github.com/avfi/avfi/internal/render"
	"github.com/avfi/avfi/internal/rng"
	"github.com/avfi/avfi/internal/sensors"
	"github.com/avfi/avfi/internal/sim"
	"github.com/avfi/avfi/internal/tensor"
	"github.com/avfi/avfi/internal/world"
)

var (
	microOnce  sync.Once
	microWorld *sim.World
)

func microSimWorld(b *testing.B) *sim.World {
	b.Helper()
	microOnce.Do(func() {
		w, err := sim.NewWorld(sim.DefaultWorldConfig())
		if err != nil {
			panic(err)
		}
		microWorld = w
	})
	return microWorld
}

func BenchmarkRenderFrame(b *testing.B) {
	w := microSimWorld(b)
	r := w.Renderer()
	scene := render.Scene{
		CamPose: w.Town().Spawns[0],
		Weather: world.WeatherClear,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Render(scene)
	}
}

func BenchmarkRenderFrameRainWithObstacles(b *testing.B) {
	w := microSimWorld(b)
	r := w.Renderer()
	pose := w.Town().Spawns[0]
	scene := render.Scene{
		CamPose: pose,
		Weather: world.WeatherRain,
		Obstacles: []render.Obstacle{
			{Box: physics.VehicleOBB(physics.VehicleState{Pose: pose.Advance(15)}, physics.DefaultVehicleParams()), Height: 1.5, Kind: render.ObstacleVehicle},
			{Box: physics.VehicleOBB(physics.VehicleState{Pose: pose.Advance(30)}, physics.DefaultVehicleParams()), Height: 1.5, Kind: render.ObstacleVehicle},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.Frame = i
		_ = r.Render(scene)
	}
}

func BenchmarkAgentForward(b *testing.B) {
	a, err := agent.New(agent.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	img := render.NewImage(64, 48)
	r := rng.New(1)
	for i := range img.Pix {
		img.Pix[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Act(img, 5, world.TurnFollow); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentTrainStep(b *testing.B) {
	a, err := agent.New(agent.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.New(3, 48, 64)
	r := rng.New(2)
	for i := range img.Data() {
		img.Data()[i] = r.Float64()
	}
	data := []agent.Sample{{
		Image: img, Speed: 5, Command: world.TurnFollow, Steer: 0.1, TargetSpeed: 6,
	}}
	tc := agent.TrainConfig{Epochs: 1, BatchSize: 1, LR: 1e-3, SteerWeight: 1, SpeedWeight: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Train(data, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhysicsStep(b *testing.B) {
	p := physics.DefaultVehicleParams()
	s := physics.VehicleState{Speed: 8}
	ctl := physics.Control{Steer: 0.2, Throttle: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = physics.StepVehicle(s, ctl, p, sim.Dt)
	}
}

func BenchmarkEpisodeStepWithAutopilot(b *testing.B) {
	w := microSimWorld(b)
	from, to, err := w.Town().RandomMission(rng.New(1), 150)
	if err != nil {
		b.Fatal(err)
	}
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 1, NumNPCs: 3, NumPedestrians: 3})
	if err != nil {
		b.Fatal(err)
	}
	pilot := autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			e, err = w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			pilot = autopilot.New(e.Route(), e.EgoParams(), autopilot.DefaultConfig())
			b.StartTimer()
		}
		obs := e.Observe()
		_ = obs
		e.Step(pilot.Control(e.EgoState(), nil))
	}
}

func BenchmarkCodecSensorFrame(b *testing.B) {
	img := render.NewImage(64, 48)
	frame := &proto.SensorFrame{
		Frame: 1, ImageW: 64, ImageH: 48, Pixels: img.ToBytes(),
		Speed: 5, GPSX: 100, GPSY: 200, Command: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := proto.EncodeSensorFrame(frame)
		if _, err := proto.DecodeSensorFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImageFaultGaussian(b *testing.B) {
	img := render.NewImage(64, 48)
	g := imagefault.NewGaussian()
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InjectImage(img, i, r)
	}
}

func BenchmarkImageFaultWaterDrop(b *testing.B) {
	img := render.NewImage(64, 48)
	w := imagefault.NewWaterDrop()
	r := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.InjectImage(img, i, r)
	}
}

func BenchmarkTensorMatMul(b *testing.B) {
	r := rng.New(5)
	x := tensor.New(64, 128)
	y := tensor.New(128, 64)
	for i := range x.Data() {
		x.Data()[i] = r.Float64()
	}
	for i := range y.Data() {
		y.Data()[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNConvForward(b *testing.B) {
	r := rng.New(6)
	conv := nn.NewConv2D(3, 48, 64, 8, 3, 2, 1).InitHe(r)
	img := tensor.New(3, 48, 64)
	for i := range img.Data() {
		img.Data()[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteProject(b *testing.B) {
	w := microSimWorld(b)
	from, to, err := w.Town().RandomMission(rng.New(7), 200)
	if err != nil {
		b.Fatal(err)
	}
	route, err := w.Town().Net.PlanRoute(from, to)
	if err != nil {
		b.Fatal(err)
	}
	p := route.PointAt(route.Length() / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.Project(p)
	}
}

func BenchmarkLidarScan(b *testing.B) {
	w := microSimWorld(b)
	from, to, err := w.Town().RandomMission(rng.New(8), 150)
	if err != nil {
		b.Fatal(err)
	}
	e, err := w.NewEpisode(sim.EpisodeConfig{From: from, To: to, Seed: 2, NumNPCs: 4})
	if err != nil {
		b.Fatal(err)
	}
	l := lidar36()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.LidarScan(l)
	}
}

// lidar36 is the scanner used by the LIDAR bench.
func lidar36() *sensors.Lidar { return sensors.NewLidar(36, 80) }
