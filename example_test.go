package avfi_test

import (
	"fmt"
	"os"

	"github.com/avfi/avfi"
)

// ExampleNewCampaign shows the minimal fault-injection campaign: the
// fault-free baseline against one camera fault. (Training the agent takes
// about a minute, so this example is illustrative rather than executed.)
func ExampleNewCampaign() {
	spec := avfi.DefaultPretrainSpec()
	cfg := avfi.CampaignConfig{
		World:       avfi.DefaultWorldConfig(),
		Agent:       avfi.AgentSource{Pretrain: &spec},
		Injectors:   []avfi.InjectorSource{avfi.Injector(avfi.NoInject), avfi.Injector("gaussian")},
		Missions:    6,
		Repetitions: 2,
		Seed:        1,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		panic(err)
	}
	rs, err := runner.Run()
	if err != nil {
		panic(err)
	}
	avfi.PrintTable(os.Stdout, "campaign", rs.Reports)
}

// ExampleWindowed shows mid-episode fault activation for time-to-violation
// studies: the occlusion strikes ten seconds into every mission.
func ExampleWindowed() {
	src := avfi.Windowed(avfi.Injector("solidocc"), 10*avfi.FPS)
	fmt.Println(src.Name, "activates at frame", src.InjectionFrame)
	// Output: solidocc@150 activates at frame 150
}

// ExampleInjector_registry lists a few of the built-in fault models.
func ExampleInjector_registry() {
	names := avfi.RegisteredInjectors()
	fmt.Println(len(names) > 15, names[0] != "")
	// Output: true true
}

// ExampleDelaySweep builds the paper's Figure 4 campaign columns.
func ExampleDelaySweep() {
	sweep := avfi.DelaySweep(avfi.Fig4Frames())
	for _, src := range sweep {
		fmt.Println(src.Name)
	}
	// Output:
	// delay-00
	// delay-05
	// delay-10
	// delay-20
	// delay-30
}
