module github.com/avfi/avfi

go 1.24
