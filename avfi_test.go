package avfi_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/avfi/avfi"
)

// --- Facade smoke tests (no agent training required) ---

// untrainedTinyAgent builds a fresh agent matching the tiny camera.
func untrainedTinyAgent(t *testing.T) *avfi.Agent {
	t.Helper()
	cfg := avfi.AgentConfig{
		ImageW: 16, ImageH: 12, Conv1: 4, Conv2: 4,
		FeatDim: 8, MeasDim: 4, HeadHidden: 8, Seed: 2,
	}
	a, err := avfi.NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func tinyWorldConfig() avfi.WorldConfig {
	cfg := avfi.DefaultWorldConfig()
	cfg.Town.GridW, cfg.Town.GridH = 3, 3
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	return cfg
}

func TestRegisteredInjectorsComplete(t *testing.T) {
	names := avfi.RegisteredInjectors()
	want := []string{
		"noinject",
		"gaussian", "saltpepper", "solidocc", "transpocc", "waterdrop",
		"gpsdrift", "speedcorrupt",
		"ctrlbitflip", "ctrlstuck", "pixelbitflip",
		"outputdelay", "outputdrop", "outputreorder",
		"weightnoise", "weightbitflip", "neuronstuck",
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("injector %q not registered", w)
		}
	}
}

func TestSuiteBuilders(t *testing.T) {
	if len(avfi.InputFaultSuite()) != 6 {
		t.Error("InputFaultSuite size wrong")
	}
	frames := avfi.Fig4Frames()
	if len(frames) != 5 || frames[4] != 30 {
		t.Errorf("Fig4Frames = %v", frames)
	}
	if len(avfi.DelaySweep(frames)) != 5 {
		t.Error("DelaySweep size wrong")
	}
	// Fig4Frames returns a copy.
	frames[0] = 999
	if avfi.Fig4Frames()[0] == 999 {
		t.Error("Fig4Frames exposes internal slice")
	}
}

func TestNewWorldAndCampaignViaFacade(t *testing.T) {
	w, err := avfi.NewWorld(tinyWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w.Town().Net.NodeCount() != 9 {
		t.Errorf("node count = %d", w.Town().Net.NodeCount())
	}

	// Untrained agent is enough to exercise the facade path.
	a := untrainedTinyAgent(t)
	cfg := avfi.CampaignConfig{
		World:       tinyWorldConfig(),
		Agent:       avfi.AgentSource{Agent: a},
		Injectors:   []avfi.InjectorSource{avfi.Injector(avfi.NoInject)},
		Missions:    1,
		Repetitions: 1,
		Seed:        5,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 1 || len(rs.Reports) != 1 {
		t.Fatalf("result shape: %d records, %d reports", len(rs.Records), len(rs.Reports))
	}

	var buf bytes.Buffer
	avfi.PrintTable(&buf, "facade", rs.Reports)
	if !strings.Contains(buf.String(), "noinject") {
		t.Error("PrintTable output incomplete")
	}
	buf.Reset()
	if err := avfi.WriteRecordsCSV(&buf, rs.Records); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := avfi.WriteReportsCSV(&buf, rs.Reports); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := avfi.WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
}

func TestAgentSaveLoadViaFacade(t *testing.T) {
	a := untrainedTinyAgent(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := avfi.LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParamCount() != a.ParamCount() {
		t.Error("loaded agent differs")
	}
}

// --- Paper-shape integration tests (expensive: train + campaigns) ---

// shapeCampaigns trains the experiment agent once per process and runs the
// Figure 2/3 and Figure 4 campaigns at the scale validated in
// EXPERIMENTS.md. Tests and benchmarks share the cached results.
func shapeCampaigns(tb testing.TB) (*avfi.ResultSet, *avfi.ResultSet) {
	tb.Helper()
	return paperCampaigns(tb)
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape campaigns are expensive")
	}
	fig23, _ := shapeCampaigns(t)

	baseline, ok := fig23.ReportFor(avfi.NoInject)
	if !ok {
		t.Fatal("no baseline report")
	}
	// The fault-free agent completes most missions.
	if baseline.MSR < 70 {
		t.Errorf("baseline MSR = %.1f, want >= 70", baseline.MSR)
	}
	// Every camera fault lowers or equals the baseline MSR; most strictly.
	strictly := 0
	for _, rep := range fig23.Reports {
		if rep.Injector == avfi.NoInject {
			continue
		}
		if rep.MSR > baseline.MSR {
			t.Errorf("%s MSR %.1f exceeds baseline %.1f", rep.Injector, rep.MSR, baseline.MSR)
		}
		if rep.MSR < baseline.MSR {
			strictly++
		}
	}
	if strictly < 3 {
		t.Errorf("only %d/5 camera faults strictly reduced MSR", strictly)
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape campaigns are expensive")
	}
	fig23, _ := shapeCampaigns(t)

	baseline, _ := fig23.ReportFor(avfi.NoInject)
	// Fault-free driving commits (close to) no violations per km.
	if baseline.VPK.Median > 0.5 {
		t.Errorf("baseline VPK median = %.2f, want ~0", baseline.VPK.Median)
	}
	elevated := 0
	for _, rep := range fig23.Reports {
		if rep.Injector == avfi.NoInject {
			continue
		}
		if rep.MeanVPK < baseline.MeanVPK {
			t.Errorf("%s mean VPK %.2f below baseline %.2f", rep.Injector, rep.MeanVPK, baseline.MeanVPK)
		}
		if rep.VPK.Median > 1 {
			elevated++
		}
	}
	// The paper's log-scale Figure 3: several faults push VPK well above
	// the baseline's zero.
	if elevated < 3 {
		t.Errorf("only %d/5 camera faults elevated median VPK above 1", elevated)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape campaigns are expensive")
	}
	_, fig4 := shapeCampaigns(t)

	if len(fig4.Reports) != 5 {
		t.Fatalf("fig4 reports = %d", len(fig4.Reports))
	}
	vpk := make([]float64, 5)
	msr := make([]float64, 5)
	for i, rep := range fig4.Reports {
		vpk[i] = rep.MeanVPK
		msr[i] = rep.MSR
	}
	// Zero delay behaves like the baseline: near-zero violations.
	if vpk[0] > 1 {
		t.Errorf("delay-0 mean VPK = %.2f, want ~0", vpk[0])
	}
	// Large delays are catastrophic and the trend grows over the sweep:
	// the paper's Figure 4 shows a sharp rise toward 30 frames.
	if !(vpk[4] > vpk[2] && vpk[2] > vpk[0]) {
		t.Errorf("VPK not increasing across delays: %v", vpk)
	}
	if vpk[4] < 10 {
		t.Errorf("30-frame delay mean VPK = %.2f, want >> baseline", vpk[4])
	}
	if msr[4] > msr[0]-30 {
		t.Errorf("30-frame delay MSR %.1f did not collapse from %.1f", msr[4], msr[0])
	}
}

func TestFigure4TTVShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("shape campaigns are expensive")
	}
	_, fig4 := shapeCampaigns(t)
	// With larger delays, violations manifest sooner after injection.
	first, last := fig4.Reports[1], fig4.Reports[4] // delay-05 vs delay-30
	if last.TTVEpisodes > 0 && first.TTVEpisodes > 0 && last.MeanTTV > first.MeanTTV {
		t.Errorf("TTV grew with delay: %.1fs (k=5) -> %.1fs (k=30)", first.MeanTTV, last.MeanTTV)
	}
}
