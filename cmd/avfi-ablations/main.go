// Command avfi-ablations runs the ablation studies documented in
// EXPERIMENTS.md — parameter sweeps beyond the paper's figures that place
// its operating points on full degradation curves:
//
//	avfi-ablations -sweep gaussian     # MSR/VPK vs camera noise sigma
//	avfi-ablations -sweep saltpepper   # MSR/VPK vs pixel corruption prob
//	avfi-ablations -sweep weightnoise  # MSR/VPK vs ML weight noise
//	avfi-ablations -sweep hardware     # stuck-at vs transient control faults
//	avfi-ablations -sweep all
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/avfi/avfi"
	"github.com/avfi/avfi/internal/fault"
	"github.com/avfi/avfi/internal/fault/hwfault"
	"github.com/avfi/avfi/internal/fault/imagefault"
	"github.com/avfi/avfi/internal/fault/mlfault"
	"github.com/avfi/avfi/internal/fault/sensorfault"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-ablations: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sweep     = flag.String("sweep", "all", "gaussian|saltpepper|weightnoise|hardware|aeb|all")
		missions  = flag.Int("missions", 6, "missions per point")
		reps      = flag.Int("reps", 2, "repetitions per mission")
		seed      = flag.Uint64("seed", 20180625, "campaign seed")
		agentPath = flag.String("agent", "", "load a trained agent (default: train in-process)")
	)
	flag.Parse()

	agentSrc, err := agentSource(*agentPath)
	if err != nil {
		return err
	}
	base := avfi.CampaignConfig{
		World:       avfi.DefaultWorldConfig(),
		Agent:       agentSrc,
		Missions:    *missions,
		Repetitions: *reps,
		Seed:        *seed,
	}

	sweeps := map[string][]avfi.InjectorSource{
		"gaussian":    gaussianSweep(),
		"saltpepper":  saltPepperSweep(),
		"weightnoise": weightNoiseSweep(),
		"hardware":    hardwareComparison(),
	}
	order := []string{"gaussian", "saltpepper", "weightnoise", "hardware"}

	for _, name := range order {
		if *sweep != "all" && *sweep != name {
			continue
		}
		cfg := base
		cfg.Injectors = sweeps[name]
		runner, err := avfi.NewCampaign(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ablation %s: %d points x %d missions x %d reps\n",
			name, len(cfg.Injectors), *missions, *reps)
		rs, err := runner.Run()
		if err != nil {
			return err
		}
		avfi.PrintTable(os.Stdout, fmt.Sprintf("\nAblation: %s", name), rs.Reports)
	}

	if *sweep == "all" || *sweep == "aeb" {
		if err := aebAblation(base); err != nil {
			return err
		}
	}
	return nil
}

// aebAblation contrasts the same fault suite with and without the
// emergency-braking safety monitor, including the LIDAR faults that attack
// the monitor itself.
func aebAblation(base avfi.CampaignConfig) error {
	injectors := []avfi.InjectorSource{
		avfi.Injector(avfi.NoInject),
		avfi.Injector("solidocc"),
		avfi.Injector("gaussian"),
		{
			// Camera occlusion and LIDAR dropout together: the fault pair
			// that blinds both the agent and its safety monitor.
			Name: "solidocc+lidardrop",
			New: func() interface{} {
				return fault.NewChain("solidocc+lidardrop",
					imagefault.NewSolidOcclusion(), sensorfault.NewLidarDropout())
			},
		},
		avfi.Injector(sensorfault.LidarGhostName),
	}
	for _, enabled := range []bool{false, true} {
		cfg := base
		cfg.Injectors = injectors
		cfg.EnableAEB = enabled
		cfg.NumNPCs = 4
		cfg.NumPedestrians = 4
		runner, err := avfi.NewCampaign(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ablation aeb (enabled=%v): %d injectors\n", enabled, len(injectors))
		rs, err := runner.Run()
		if err != nil {
			return err
		}
		avfi.PrintTable(os.Stdout, fmt.Sprintf("\nAblation: AEB enabled=%v (4 NPCs, 4 pedestrians)", enabled), rs.Reports)
	}
	return nil
}

// gaussianSweep sweeps the camera noise sigma around the default 0.28.
func gaussianSweep() []avfi.InjectorSource {
	out := []avfi.InjectorSource{avfi.Injector(avfi.NoInject)}
	for _, sigma := range []float64{0.10, 0.20, 0.28, 0.40, 0.50} {
		sigma := sigma
		out = append(out, avfi.InjectorSource{
			Name: fmt.Sprintf("gauss-%.2f", sigma),
			New: func() interface{} {
				g := imagefault.NewGaussian()
				g.Sigma = sigma
				return g
			},
		})
	}
	return out
}

// saltPepperSweep sweeps the pixel corruption probability.
func saltPepperSweep() []avfi.InjectorSource {
	out := []avfi.InjectorSource{avfi.Injector(avfi.NoInject)}
	for _, p := range []float64{0.05, 0.10, 0.20, 0.35, 0.50} {
		p := p
		out = append(out, avfi.InjectorSource{
			Name: fmt.Sprintf("sp-%.2f", p),
			New: func() interface{} {
				s := imagefault.NewSaltPepper()
				s.Prob = p
				return s
			},
		})
	}
	return out
}

// weightNoiseSweep sweeps Gaussian weight noise relative to each tensor's
// RMS magnitude.
func weightNoiseSweep() []avfi.InjectorSource {
	out := []avfi.InjectorSource{avfi.Injector(avfi.NoInject)}
	for _, sigma := range []float64{0.1, 0.2, 0.5, 1.0, 2.0} {
		sigma := sigma
		out = append(out, avfi.InjectorSource{
			Name: fmt.Sprintf("wnoise-%.1f", sigma),
			New: func() interface{} {
				w := mlfault.NewWeightNoise()
				w.Sigma = sigma
				return w
			},
		})
	}
	return out
}

// hardwareComparison contrasts transient control bit flips against
// permanent stuck-at steering, plus frame-buffer corruption.
func hardwareComparison() []avfi.InjectorSource {
	return []avfi.InjectorSource{
		avfi.Injector(avfi.NoInject),
		avfi.Injector(hwfault.ControlBitFlipName),
		{
			Name: "ctrlbitflip-3b",
			New: func() interface{} {
				c := hwfault.NewControlBitFlip()
				c.Bits = 3
				return c
			},
		},
		avfi.Injector(hwfault.ControlStuckName),
		{
			Name: "stuck-fulllock",
			New: func() interface{} {
				return &hwfault.ControlStuck{Field: hwfault.StuckSteer, Value: 1.0}
			},
		},
		avfi.Injector(hwfault.PixelBitFlipName),
	}
}

func agentSource(path string) (avfi.AgentSource, error) {
	if path == "" {
		spec := avfi.DefaultPretrainSpec()
		return avfi.AgentSource{Pretrain: &spec}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	defer f.Close()
	a, err := avfi.LoadAgent(f)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	return avfi.AgentSource{Agent: a}, nil
}
