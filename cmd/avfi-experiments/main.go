// Command avfi-experiments regenerates every evaluation figure of the AVFI
// paper (DSN 2018):
//
//	Figure 2 — mission success rate per input fault injector
//	Figure 3 — traffic violations per km per input fault injector
//	Figure 4 — violations per km vs output delay (frames at 15 FPS)
//
// Usage:
//
//	avfi-experiments                   # all figures
//	avfi-experiments -fig 4 -reps 3    # just Figure 4, more repetitions
//	avfi-experiments -agent model.avfi # reuse a saved agent
//
// Absolute numbers depend on this repository's simulator substrate, not the
// authors' CARLA testbed; the claims under reproduction are the *shapes*
// (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate: 2, 3, 4 (0 = all)")
		ttv       = flag.Bool("ttv", false, "also run the mid-episode TTV experiment (beyond the paper's figures)")
		missions  = flag.Int("missions", 6, "missions per campaign")
		reps      = flag.Int("reps", 2, "repetitions per mission and injector")
		seed      = flag.Uint64("seed", 20180625, "campaign seed")
		agentPath = flag.String("agent", "", "load a trained agent (default: train in-process)")
		csvDir    = flag.String("csv-dir", "", "also write per-figure CSVs into this directory")
	)
	flag.Parse()

	agentSrc, err := agentSource(*agentPath)
	if err != nil {
		return err
	}
	base := avfi.CampaignConfig{
		World:       avfi.DefaultWorldConfig(),
		Agent:       agentSrc,
		Missions:    *missions,
		Repetitions: *reps,
		Seed:        *seed,
	}

	if *fig == 0 || *fig == 2 || *fig == 3 {
		cfg := base
		cfg.Injectors = avfi.InputFaultSuite()
		rs, err := runCampaign(cfg)
		if err != nil {
			return err
		}
		if *fig == 0 || *fig == 2 {
			printFig2(rs)
		}
		if *fig == 0 || *fig == 3 {
			printFig3(rs)
		}
		printComparisons(rs)
		if err := maybeCSV(*csvDir, "fig2_fig3", rs); err != nil {
			return err
		}
	}

	if *fig == 0 || *fig == 4 {
		cfg := base
		cfg.Injectors = avfi.DelaySweep(avfi.Fig4Frames())
		rs, err := runCampaign(cfg)
		if err != nil {
			return err
		}
		printFig4(rs)
		if err := maybeCSV(*csvDir, "fig4", rs); err != nil {
			return err
		}
	}

	if *ttv {
		// Faults strike mid-episode (frame 150 = 10 s in), so TTV measures
		// the gap between injection and the first resulting violation.
		const injectAt = 150
		cfg := base
		cfg.Injectors = []avfi.InjectorSource{
			avfi.Injector(avfi.NoInject),
			avfi.Windowed(avfi.Injector("gaussian"), injectAt),
			avfi.Windowed(avfi.Injector("solidocc"), injectAt),
			avfi.Windowed(avfi.Injector("ctrlstuck"), injectAt),
			avfi.Windowed(avfi.Injector("outputdelay"), injectAt),
		}
		rs, err := runCampaign(cfg)
		if err != nil {
			return err
		}
		printTTV(rs, injectAt)
		if err := maybeCSV(*csvDir, "ttv", rs); err != nil {
			return err
		}
	}
	return nil
}

// printComparisons prints bootstrap contrasts of every injector against
// the fault-free baseline.
func printComparisons(rs *avfi.ResultSet) {
	groups := map[string][]avfi.EpisodeRecord{}
	for _, rec := range rs.Records {
		groups[rec.Injector] = append(groups[rec.Injector], rec)
	}
	base, ok := groups[avfi.NoInject]
	if !ok {
		return
	}
	fmt.Println("\nBaseline contrasts (bootstrap 95% CIs; * = VPK difference significant)")
	for _, rep := range rs.Reports {
		if rep.Injector == avfi.NoInject {
			continue
		}
		c, err := avfi.Compare(base, groups[rep.Injector], 2000, avfi.NewRand(1))
		if err != nil {
			continue
		}
		fmt.Println("  " + c.String())
	}
}

// printTTV prints the time-to-violation series for mid-episode injection.
func printTTV(rs *avfi.ResultSet, injectAt int) {
	fmt.Printf("\nTTV — time from injection (frame %d = %.1fs) to first violation\n",
		injectAt, float64(injectAt)/avfi.FPS)
	fmt.Printf("%-16s %10s %10s %12s\n", "injector", "mean TTV(s)", "median(s)", "episodes w/ viol")
	for _, r := range rs.Reports {
		fmt.Printf("%-16s %10.2f %10.2f %8d/%d\n",
			r.Injector, r.MeanTTV, r.TTV.Median, r.TTVEpisodes, r.Episodes)
	}
}

func runCampaign(cfg avfi.CampaignConfig) (*avfi.ResultSet, error) {
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "campaign: %d injectors x %d missions x %d reps\n",
		len(cfg.Injectors), cfg.Missions, cfg.Repetitions)
	return runner.Run()
}

// printFig2 prints the paper's Figure 2 series: success rate per injector.
func printFig2(rs *avfi.ResultSet) {
	fmt.Println("\nFigure 2 — Mission success rate (%) per input fault injector")
	fmt.Printf("%-12s %s\n", "injector", "success_rate_pct")
	for _, r := range rs.Reports {
		fmt.Printf("%-12s %.1f\n", r.Injector, r.MSR)
	}
}

// printFig3 prints the paper's Figure 3 series: violations/km distribution
// per injector (five-number summary, as the paper's box plot).
func printFig3(rs *avfi.ResultSet) {
	fmt.Println("\nFigure 3 — Total violations / km per input fault injector")
	fmt.Printf("%-12s %8s %8s %8s %8s %8s %8s\n", "injector", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range rs.Reports {
		fmt.Printf("%-12s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Injector, r.VPK.Min, r.VPK.Q1, r.VPK.Median, r.VPK.Q3, r.VPK.Max, r.MeanVPK)
	}
}

// printFig4 prints the paper's Figure 4 series: violations/km vs delay.
func printFig4(rs *avfi.ResultSet) {
	fmt.Println("\nFigure 4 — Total violations / km vs injected output delay (frames @ 15 FPS)")
	fmt.Printf("%-12s %8s %8s %8s %8s %8s %8s\n", "delay", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range rs.Reports {
		fmt.Printf("%-12s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Injector, r.VPK.Min, r.VPK.Q1, r.VPK.Median, r.VPK.Q3, r.VPK.Max, r.MeanVPK)
	}
}

func maybeCSV(dir, name string, rs *avfi.ResultSet) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	recPath := fmt.Sprintf("%s/%s_records.csv", dir, name)
	f, err := os.Create(recPath)
	if err != nil {
		return err
	}
	if err := avfi.WriteRecordsCSV(f, rs.Records); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	repPath := fmt.Sprintf("%s/%s_reports.csv", dir, name)
	f, err = os.Create(repPath)
	if err != nil {
		return err
	}
	if err := avfi.WriteReportsCSV(f, rs.Reports); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func agentSource(path string) (avfi.AgentSource, error) {
	if path == "" {
		spec := avfi.DefaultPretrainSpec()
		return avfi.AgentSource{Pretrain: &spec}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	defer f.Close()
	a, err := avfi.LoadAgent(f)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	return avfi.AgentSource{Agent: a}, nil
}
