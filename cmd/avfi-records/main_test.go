package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/avfi/avfi"
)

func testRecords() []avfi.EpisodeRecord {
	return []avfi.EpisodeRecord{
		{Injector: "gaussian", Mission: 1, Repetition: 0, Seed: 7, Success: true,
			DistanceKM: 1.4025, DurationSec: 12.5},
		{Injector: "noinject", Mission: 0, Repetition: 0, Seed: 3, Success: true,
			DistanceKM: 1.0, DurationSec: 9.0},
		{Injector: "noinject", Mission: 0, Repetition: 1, Seed: 4,
			Violations: []avfi.ViolationRecord{{Kind: "collision", TimeSec: 4.5, Accident: true}}},
	}
}

func writeLog(t *testing.T, path string, format avfi.RecordFormat, recs []avfi.EpisodeRecord) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := format.NewRecordSink(f)
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// canonicalJSONL is the reference output: the canonical sorted merge of
// the given records as JSONL.
func canonicalJSONL(t *testing.T, recs []avfi.EpisodeRecord) []byte {
	t.Helper()
	var in bytes.Buffer
	sink := avfi.NewBinarySink(&in)
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := avfi.MergeRecords(&out, avfi.FormatJSONL, bytes.NewReader(in.Bytes())); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestRunMergesShardDirToStdout: a mixed-format shard directory merges to
// the canonical JSONL stream on stdout.
func TestRunMergesShardDirToStdout(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	writeLog(t, filepath.Join(dir, avfi.ShardLogName(0)), avfi.FormatJSONL, recs[:1])
	writeLog(t, filepath.Join(dir, avfi.BinaryShardLogName(1)), avfi.FormatBinary, recs[1:])

	var out bytes.Buffer
	if err := run([]string{dir}, &out); err != nil {
		t.Fatal(err)
	}
	if want := canonicalJSONL(t, recs); !bytes.Equal(out.Bytes(), want) {
		t.Errorf("merged dir = %q, want %q", out.Bytes(), want)
	}
}

// TestRunConvertsRoundTrip: JSONL -> binary file -> JSONL through the
// command is byte-lossless.
func TestRunConvertsRoundTrip(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	src := filepath.Join(dir, "records.jsonl")
	writeLog(t, src, avfi.FormatJSONL, recs)

	bin := filepath.Join(dir, "records.bin")
	if err := run([]string{"-format", "binary", "-o", bin, src}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if avfi.SniffRecordFormat(data) != avfi.FormatBinary {
		t.Fatalf("converted log does not open with a binary frame: %x", data[:1])
	}

	var back bytes.Buffer
	if err := run([]string{bin}, &back); err != nil {
		t.Fatal(err)
	}
	if want := canonicalJSONL(t, recs); !bytes.Equal(back.Bytes(), want) {
		t.Errorf("binary round trip = %q, want %q", back.Bytes(), want)
	}
}

// TestRunRefusesOutputOverInput: -o naming one of the inputs must be
// refused before os.Create truncates it.
func TestRunRefusesOutputOverInput(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "records.jsonl")
	writeLog(t, src, avfi.FormatJSONL, testRecords())

	err := run([]string{"-o", src, src}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "also an input") {
		t.Fatalf("merging a log onto itself: err = %v, want output-is-input refusal", err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("refused merge still truncated the input")
	}
}

// TestRunRejectsEmptyAndMissingInputs pins the error paths: no args, a
// directory with no shard logs, and a nonexistent path.
func TestRunRejectsEmptyAndMissingInputs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("shard-less directory accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("nonexistent input accepted")
	}
}
