// Command avfi-records converts and merges AVFI episode record logs
// between the binary hot-path format and JSONL, preserving the canonical
// sorted-merge semantics: any set of logs — single-sink files, shard
// directories, either format, any mix — merges into the one canonical
// record stream, byte-identical for identical episode sets regardless of
// how (or in what format) the campaign streamed them.
//
// Usage:
//
//	avfi-records logs/                       # shard dir -> canonical JSONL on stdout
//	avfi-records -format binary -o records.bin records.jsonl
//	avfi-records -o merged.jsonl run1/ run2/ extra.bin
//
// Input formats are auto-detected per file (binary frames open with 0xAF,
// which no JSON line can). Crash-truncated tails are dropped, exactly as
// -resume drops them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-records: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("avfi-records", flag.ContinueOnError)
	formatFlag := fs.String("format", "jsonl", "output record format: jsonl|binary")
	outPath := fs.String("o", "", "write the merged log here (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input logs (pass record files or shard directories)")
	}
	format, err := avfi.ParseRecordFormat(*formatFlag)
	if err != nil {
		return err
	}
	paths, err := expandInputs(fs.Args())
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no record logs found in %v", fs.Args())
	}
	if *outPath != "" {
		// os.Create truncates before the merge reads anything: writing the
		// output over one of its own inputs would silently destroy it.
		for _, p := range paths {
			if sameFile(*outPath, p) {
				return fmt.Errorf("output %s is also an input; merge to a different path", *outPath)
			}
		}
	}

	files := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		files = append(files, f)
	}

	out := stdout
	var outFile *os.File
	if *outPath != "" {
		if outFile, err = os.Create(*outPath); err != nil {
			return err
		}
		out = outFile
	}
	n, err := avfi.MergeRecords(out, format, files...)
	if err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "avfi-records: merged %d episodes from %d log(s) as %s\n", n, len(paths), format)
	return nil
}

// expandInputs resolves each argument to record log paths: a file names
// itself, a directory contributes every shard log it holds (both
// formats, sorted), so whole -stream-records directories convert in one
// command.
func expandInputs(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		var shards []string
		for _, pattern := range []string{"records-*.jsonl", "records-*.bin"} {
			part, err := filepath.Glob(filepath.Join(arg, pattern))
			if err != nil {
				return nil, err
			}
			shards = append(shards, part...)
		}
		sort.Strings(shards)
		paths = append(paths, shards...)
	}
	return paths, nil
}

// sameFile reports whether two paths name the same underlying file; a
// path that doesn't stat is not the same file as anything.
func sameFile(a, b string) bool {
	ai, err := os.Stat(a)
	if err != nil {
		return false
	}
	bi, err := os.Stat(b)
	if err != nil {
		return false
	}
	return os.SameFile(ai, bi)
}
