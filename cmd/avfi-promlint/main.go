// Command avfi-promlint validates a Prometheus text exposition payload —
// the format AVFI's -status-addr /metrics endpoint serves. It reads the
// payload from stdin (or the files named as arguments), checks comment
// structure, metric and label syntax, sample values, and histogram
// consistency (_count must match the +Inf bucket), and exits non-zero on
// the first malformed input. CI pipes a mid-run scrape through it so a
// broken exposition fails the build instead of a dashboard.
//
// Usage:
//
//	curl -s localhost:6060/metrics | avfi-promlint
//	avfi-promlint scrape1.txt scrape2.txt
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-promlint: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return lint("stdin", os.Stdin)
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = lint(path, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func lint(name string, r io.Reader) error {
	body, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := avfi.LintPrometheusText(body); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}
