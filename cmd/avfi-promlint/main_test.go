package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLintFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte("# HELP m things\n# TYPE m counter\nm{k=\"v\"} 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("# TYPE m counter\nm hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("malformed exposition accepted")
	}
	if err := run([]string{good, bad}); err == nil {
		t.Error("malformed second file accepted")
	}
	if err := run([]string{filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing file accepted")
	}
}
