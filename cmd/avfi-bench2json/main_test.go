package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/avfi/avfi/internal/campaign
cpu: Shared KVM processor
BenchmarkCampaignPool/inproc-1-8         	       1	509849302 ns/op	        31.38 episodes/sec
BenchmarkCampaignPool/remote-4-8         	       2	128849302 ns/op	       124.17 episodes/sec
PASS
ok  	github.com/avfi/avfi/internal/campaign	3.297s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []BenchResult{
		{
			Name:       "BenchmarkCampaignPool/inproc-1-8",
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": 509849302, "episodes/sec": 31.38},
		},
		{
			Name:       "BenchmarkCampaignPool/remote-4-8",
			Iterations: 2,
			Metrics:    map[string]float64{"ns/op": 128849302, "episodes/sec": 124.17},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench:\n got  %+v\n want %+v", got, want)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var back []BenchResult
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(back) != 2 {
		t.Errorf("round-tripped %d results, want 2", len(back))
	}
}

// TestParseBenchNoResults: a bench run with no benchmark lines must still
// produce a JSON array, not null — downstream tooling reads length.
func TestParseBenchNoResults(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\nok x 0.01s\n"), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty bench run encoded as %q, want []", got)
	}
}

func TestParseBenchBadMetric(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-8 1 nope ns/op\n")); err == nil {
		t.Error("unparseable metric value accepted")
	}
}

func TestProcsSuffix(t *testing.T) {
	mk := func(names ...string) []BenchResult {
		rs := make([]BenchResult, len(names))
		for i, n := range names {
			rs[i] = BenchResult{Name: n}
		}
		return rs
	}
	cases := []struct {
		names []BenchResult
		want  string
	}{
		// Uniform -8 tail across the document: the procs suffix.
		{mk("BenchmarkCampaignPool/remote-1-8", "BenchmarkCampaignPool/remote-4-8"), "-8"},
		// GOMAXPROCS=1 run: sub-bench numbers vary, nothing to strip.
		{mk("BenchmarkCampaignPool/remote-1", "BenchmarkCampaignPool/remote-4"), ""},
		// A name with no numeric tail at all vetoes stripping.
		{mk("BenchmarkRecordCodec/binary", "BenchmarkCampaignPool/remote-4-8"), ""},
		{nil, ""},
	}
	for _, tc := range cases {
		if got := procsSuffix(tc.names); got != tc.want {
			t.Errorf("procsSuffix(%v) = %q, want %q", tc.names, got, tc.want)
		}
	}
}

// writeBaseline commits a baseline fixture and returns its path.
func writeBaseline(t *testing.T, results []BenchResult) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func remoteBaseline(epsPerSec float64) []BenchResult {
	return []BenchResult{
		{Name: "BenchmarkCampaignPool/inproc-1-4", Iterations: 1,
			Metrics: map[string]float64{"episodes/sec": 1000}},
		{Name: "BenchmarkCampaignPool/remote-4-4", Iterations: 1,
			Metrics: map[string]float64{"episodes/sec": epsPerSec}},
	}
}

// TestBaselineGatePasses: a run within the tolerance (including a mild
// drop and a different GOMAXPROCS suffix) passes the gate.
func TestBaselineGatePasses(t *testing.T) {
	// Current run: 124.17 eps on remote-4 (sampleBench). Baseline asks for
	// at most 20% below 150 => floor 120.
	path := writeBaseline(t, remoteBaseline(150))
	var out bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "BenchmarkCampaignPool/remote-4-8") {
		t.Error("gated run did not still emit the JSON document")
	}
}

// TestBaselineGateFailsOnRegression: a drop past -max-regress fails, and
// the JSON artifact is written before the failure surfaces.
func TestBaselineGateFailsOnRegression(t *testing.T) {
	// 124.17 eps vs baseline 200 is a 38% drop.
	path := writeBaseline(t, remoteBaseline(200))
	var out bytes.Buffer
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "perf regression") {
		t.Fatalf("38%% drop passed the gate: %v", err)
	}
	if out.Len() == 0 {
		t.Error("failed gate suppressed the JSON artifact")
	}
	// Loosening the threshold admits the same run.
	if err := run([]string{"-baseline", path, "-max-regress", "50"},
		strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Errorf("-max-regress 50 still failed: %v", err)
	}
}

// TestBaselineGateFailsOnMissingBenchmark: a gated benchmark that vanishes
// from the run is a failure — deleting the benchmark must not green the gate.
func TestBaselineGateFailsOnMissingBenchmark(t *testing.T) {
	path := writeBaseline(t, append(remoteBaseline(100), BenchResult{
		Name: "BenchmarkCampaignPool/remote-8-4", Iterations: 1,
		Metrics: map[string]float64{"episodes/sec": 100},
	}))
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "missing from this run") {
		t.Fatalf("vanished gated benchmark: err = %v, want missing-benchmark failure", err)
	}
}

// TestBaselineGateFramesPerSec: frame-path benchmarks gate on frames/sec
// the way campaign benchmarks gate on episodes/sec, from the same
// baseline document and under the default -match.
func TestBaselineGateFramesPerSec(t *testing.T) {
	const frameBench = `BenchmarkCampaignPool/remote-4-8   2  128849302 ns/op  124.17 episodes/sec
BenchmarkFrameRoundTrip/delta-8    9000  111111 ns/op  9000 frames/sec  700 wire-B/frame
PASS
`
	baseline := append(remoteBaseline(100), BenchResult{
		Name: "BenchmarkFrameRoundTrip/delta-4", Iterations: 1,
		Metrics: map[string]float64{"frames/sec": 10000}})
	path := writeBaseline(t, baseline)
	// 9000 frames/sec is 10% below the 10000 baseline: inside tolerance.
	if err := run([]string{"-baseline", path}, strings.NewReader(frameBench), &bytes.Buffer{}); err != nil {
		t.Fatalf("within-tolerance frames/sec run failed the gate: %v", err)
	}
	// Raise the baseline so the same run is a 40% drop: gate must trip.
	baseline[len(baseline)-1].Metrics["frames/sec"] = 15000
	path = writeBaseline(t, baseline)
	err := run([]string{"-baseline", path}, strings.NewReader(frameBench), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "frames/sec") {
		t.Fatalf("40%% frames/sec drop: err = %v, want frames/sec regression", err)
	}
}

// TestBaselineGateRejectsVacuousBaseline: a baseline whose entries never
// match the gate regexp means the gate guards nothing — that is a
// configuration error, not a pass.
func TestBaselineGateRejectsVacuousBaseline(t *testing.T) {
	path := writeBaseline(t, []BenchResult{{
		Name: "BenchmarkRecordCodec/binary-8", Iterations: 1,
		Metrics: map[string]float64{"MB/s": 512},
	}})
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "vacuous") {
		t.Fatalf("gate with nothing to guard: err = %v, want vacuous-baseline failure", err)
	}
}
