package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/avfi/avfi/internal/campaign
cpu: Shared KVM processor
BenchmarkCampaignPool/inproc-1-8         	       1	509849302 ns/op	        31.38 episodes/sec
BenchmarkCampaignPool/remote-4-8         	       2	128849302 ns/op	       124.17 episodes/sec
PASS
ok  	github.com/avfi/avfi/internal/campaign	3.297s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []BenchResult{
		{
			Name:       "BenchmarkCampaignPool/inproc-1-8",
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": 509849302, "episodes/sec": 31.38},
		},
		{
			Name:       "BenchmarkCampaignPool/remote-4-8",
			Iterations: 2,
			Metrics:    map[string]float64{"ns/op": 128849302, "episodes/sec": 124.17},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench:\n got  %+v\n want %+v", got, want)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var back []BenchResult
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(back) != 2 {
		t.Errorf("round-tripped %d results, want 2", len(back))
	}
}

// TestParseBenchNoResults: a bench run with no benchmark lines must still
// produce a JSON array, not null — downstream tooling reads length.
func TestParseBenchNoResults(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 0.01s\n"), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty bench run encoded as %q, want []", got)
	}
}

func TestParseBenchBadMetric(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-8 1 nope ns/op\n")); err == nil {
		t.Error("unparseable metric value accepted")
	}
}
