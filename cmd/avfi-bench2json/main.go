// Command avfi-bench2json renders `go test -bench` output into a JSON
// document, so CI can persist a machine-readable perf trajectory (e.g.
// BENCH_pool.json from BenchmarkCampaignPool) instead of a text log.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkCampaignPool -benchtime=1x ./internal/campaign/ | avfi-bench2json > BENCH_pool.json
//
// Non-benchmark lines (goos/goarch headers, PASS, ok) are ignored. Each
// benchmark line becomes one entry with its iteration count and every
// reported metric (ns/op, episodes/sec, B/op, ...) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line, decoded.
type BenchResult struct {
	// Name is the full benchmark path, e.g.
	// "BenchmarkCampaignPool/remote-4-8".
	Name string `json:"name"`
	// Iterations is the b.N the reported averages cover.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value, e.g.
	// {"ns/op": 5.1e8, "episodes/sec": 62.76}.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-bench2json: %v\n", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseBench extracts every benchmark line from go test -bench output.
func parseBench(in io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	results := []BenchResult{}
	for sc.Scan() {
		res, ok, err := parseBenchLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseBenchLine decodes one "BenchmarkX-8  N  V unit  V unit ..." line;
// ok is false for every other kind of line.
func parseBenchLine(line string) (BenchResult, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		// A line that happens to start with "Benchmark" but isn't a result
		// (e.g. a failure message) is skipped, not fatal.
		return BenchResult{}, false, nil
	}
	res := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return BenchResult{}, false, fmt.Errorf("odd value/unit tail in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return BenchResult{}, false, fmt.Errorf("bad metric value %q in %q", rest[i], line)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, true, nil
}
