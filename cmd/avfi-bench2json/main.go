// Command avfi-bench2json renders `go test -bench` output into a JSON
// document, so CI can persist a machine-readable perf trajectory (e.g.
// BENCH_pool.json from BenchmarkCampaignPool) instead of a text log.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkCampaignPool -benchtime=1x ./internal/campaign/ | avfi-bench2json > BENCH_pool.json
//	avfi-bench2json -baseline BENCH_pool_baseline.json < bench_pool.txt > BENCH_pool.json
//
// Non-benchmark lines (goos/goarch headers, PASS, ok) are ignored. Each
// benchmark line becomes one entry with its iteration count and every
// reported metric (ns/op, episodes/sec, B/op, ...) keyed by unit.
//
// With -baseline, the run also acts as a perf regression gate: every
// baseline benchmark whose name matches -match must appear in the current
// run with a throughput figure (episodes/sec for campaign benchmarks,
// frames/sec for frame-path ones) no more than -max-regress percent below
// the baseline's, or the command exits nonzero (after writing the JSON,
// so the artifact survives for diagnosis). GOMAXPROCS name suffixes are
// normalized away, so a baseline recorded on one core count compares
// against runners with another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line, decoded.
type BenchResult struct {
	// Name is the full benchmark path, e.g.
	// "BenchmarkCampaignPool/remote-4-8".
	Name string `json:"name"`
	// Iterations is the b.N the reported averages cover.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value, e.g.
	// {"ns/op": 5.1e8, "episodes/sec": 62.76}.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-bench2json: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("avfi-bench2json", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "",
		"committed BenchResult JSON to gate against; absent = no perf gate")
	maxRegress := fs.Float64("max-regress", 20,
		"max tolerated throughput drop below -baseline, in percent")
	match := fs.String("match", "^Benchmark(CampaignPool/remote|FrameRoundTrip|TelemetryOverhead)",
		"regexp selecting the baseline-gated benchmark names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	if *baselinePath == "" {
		return nil
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var baseline []BenchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %v", *baselinePath, err)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match: %v", err)
	}
	return checkRegressions(results, baseline, re, *maxRegress)
}

// procsSuffix returns the "-GOMAXPROCS" suffix go test appended to every
// benchmark name in the document, or "" when there is none (GOMAXPROCS=1
// runs have no suffix). The suffix is identified document-wide: it is
// only the procs suffix if every name ends in the same "-N" — sub-bench
// numbers like remote-1/remote-4 vary, the procs suffix never does.
func procsSuffix(results []BenchResult) string {
	suffix := ""
	for i, r := range results {
		at := strings.LastIndex(r.Name, "-")
		if at < 0 {
			return ""
		}
		tail := r.Name[at:]
		if _, err := strconv.Atoi(tail[1:]); err != nil {
			return ""
		}
		if i == 0 {
			suffix = tail
		} else if tail != suffix {
			return ""
		}
	}
	return suffix
}

// throughputMetrics are the per-benchmark figures the gate understands,
// in lookup order. Each gated benchmark is compared on the first of these
// its baseline entry reports — campaign benchmarks carry episodes/sec,
// frame-path benchmarks frames/sec.
var throughputMetrics = []string{"episodes/sec", "frames/sec"}

// throughput picks a benchmark's gated figure, if it reports one.
func throughput(r BenchResult) (string, float64, bool) {
	for _, m := range throughputMetrics {
		if v, ok := r.Metrics[m]; ok && v > 0 {
			return m, v, true
		}
	}
	return "", 0, false
}

// checkRegressions is the perf gate: every baseline benchmark matching re
// must be present in the current run, and its throughput metric must not
// sit more than maxRegress percent below the baseline figure. All failures
// are reported at once — a regression across the board should read as
// such, not as one benchmark at a time.
func checkRegressions(current, baseline []BenchResult, re *regexp.Regexp, maxRegress float64) error {
	curSuffix, baseSuffix := procsSuffix(current), procsSuffix(baseline)
	cur := make(map[string]BenchResult, len(current))
	for _, r := range current {
		cur[strings.TrimSuffix(r.Name, curSuffix)] = r
	}
	var failures []string
	gated := 0
	for _, b := range baseline {
		name := strings.TrimSuffix(b.Name, baseSuffix)
		if !re.MatchString(name) {
			continue
		}
		metric, base, ok := throughput(b)
		if !ok {
			continue
		}
		gated++
		r, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", name))
			continue
		}
		got, ok := r.Metrics[metric]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: this run reports no %s", name, metric))
			continue
		}
		drop := (base - got) / base * 100
		if drop > maxRegress {
			failures = append(failures,
				fmt.Sprintf("%s: %.2f %s, %.1f%% below baseline %.2f (max %g%%)",
					name, got, metric, drop, base, maxRegress))
		} else {
			fmt.Fprintf(os.Stderr, "avfi-bench2json: %s: %.2f %s vs baseline %.2f (ok)\n",
				name, got, metric, base)
		}
	}
	if gated == 0 {
		return fmt.Errorf("baseline has no throughput benchmarks matching %v — gate is vacuous", re)
	}
	if failures != nil {
		return fmt.Errorf("perf regression vs baseline:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBench extracts every benchmark line from go test -bench output.
func parseBench(in io.Reader) ([]BenchResult, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	results := []BenchResult{}
	for sc.Scan() {
		res, ok, err := parseBenchLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseBenchLine decodes one "BenchmarkX-8  N  V unit  V unit ..." line;
// ok is false for every other kind of line.
func parseBenchLine(line string) (BenchResult, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		// A line that happens to start with "Benchmark" but isn't a result
		// (e.g. a failure message) is skipped, not fatal.
		return BenchResult{}, false, nil
	}
	res := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return BenchResult{}, false, fmt.Errorf("odd value/unit tail in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return BenchResult{}, false, fmt.Errorf("bad metric value %q in %q", rest[i], line)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, true, nil
}
