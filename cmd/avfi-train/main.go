// Command avfi-train trains the imitation-learning driving agent against
// the oracle autopilot and saves it, so campaigns and experiments can load
// it instead of retraining.
//
// Usage:
//
//	avfi-train -out model.avfi
//	avfi-train -missions 14 -epochs 10 -out model.avfi
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avfi-train: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "model.avfi", "output model path")
		missions = flag.Int("missions", 0, "demonstration missions (0 = spec default)")
		epochs   = flag.Int("epochs", 0, "training epochs (0 = spec default)")
		seed     = flag.Uint64("seed", 0, "data seed (0 = spec default)")
		eval     = flag.Int("eval", 6, "missions to evaluate the trained agent on (0 to skip)")
	)
	flag.Parse()

	spec := avfi.DefaultPretrainSpec()
	if *missions > 0 {
		spec.Missions = *missions
	}
	if *epochs > 0 {
		spec.Train.Epochs = *epochs
	}
	if *seed != 0 {
		spec.DataSeed = *seed
	}

	world, err := avfi.NewWorld(avfi.DefaultWorldConfig())
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "collecting %d demonstration missions and training (%d epochs)...\n",
		spec.Missions, spec.Train.Epochs)
	start := time.Now()
	agent, err := avfi.TrainAgent(world, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained %d parameters in %v\n", agent.ParamCount(), time.Since(start).Round(time.Second))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := agent.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("saved agent to %s\n", *out)

	if *eval > 0 {
		cfg := avfi.CampaignConfig{
			World:       avfi.DefaultWorldConfig(),
			Agent:       avfi.AgentSource{Agent: agent},
			Injectors:   []avfi.InjectorSource{avfi.Injector(avfi.NoInject)},
			Missions:    *eval,
			Repetitions: 1,
			Seed:        777,
		}
		runner, err := avfi.NewCampaign(cfg)
		if err != nil {
			return err
		}
		rs, err := runner.Run()
		if err != nil {
			return err
		}
		avfi.PrintTable(os.Stdout, "fault-free evaluation", rs.Reports)
	}
	return nil
}
