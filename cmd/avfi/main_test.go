package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClampToCompleteLines(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", ""},
		{"clean", "{\"a\":1}\n{\"b\":2}\n", "{\"a\":1}\n{\"b\":2}\n"},
		{"truncated tail", "{\"a\":1}\n{\"b\":2}\n{\"c\":", "{\"a\":1}\n{\"b\":2}\n"},
		{"no newline at all", "{\"a\":", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "log.jsonl")
			if err := os.WriteFile(path, []byte(tc.in), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := clampToCompleteLines(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("clamped to %q, want %q", got, tc.want)
			}
		})
	}
}

func TestSameFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(mustGetwd(t), path)
	if err != nil {
		t.Skip("temp dir not relativizable from cwd")
	}
	if !sameFile(path, rel) {
		t.Error("absolute and relative spellings of one file not detected as the same")
	}
	if sameFile(path, filepath.Join(dir, "other.jsonl")) {
		t.Error("nonexistent file reported same")
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}
