package main

import (
	"bytes"
	"context"
	"flag"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/avfi/avfi"
)

func TestClampToCompleteLines(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", ""},
		{"clean", "{\"a\":1}\n{\"b\":2}\n", "{\"a\":1}\n{\"b\":2}\n"},
		{"truncated tail", "{\"a\":1}\n{\"b\":2}\n{\"c\":", "{\"a\":1}\n{\"b\":2}\n"},
		{"no newline at all", "{\"a\":", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "log.jsonl")
			if err := os.WriteFile(path, []byte(tc.in), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := clampToCompleteLines(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("clamped to %q, want %q", got, tc.want)
			}
		})
	}
}

func TestSameFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(mustGetwd(t), path)
	if err != nil {
		t.Skip("temp dir not relativizable from cwd")
	}
	if !sameFile(path, rel) {
		t.Error("absolute and relative spellings of one file not detected as the same")
	}
	if sameFile(path, filepath.Join(dir, "other.jsonl")) {
		t.Error("nonexistent file reported same")
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// tinyServeWorld keeps -serve tests fast: the worker builds this world
// instead of the full DefaultWorldConfig one.
func tinyServeWorld() avfi.WorldConfig {
	cfg := avfi.DefaultWorldConfig()
	cfg.Town.GridW, cfg.Town.GridH = 3, 3
	cfg.Camera.Width, cfg.Camera.Height = 16, 12
	return cfg
}

// syncBuffer lets the test read worker output while serveWorker is still
// writing it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeWorkerInvalidAddress(t *testing.T) {
	err := serveWorker(context.Background(), "definitely.not.a.host:notaport", tinyServeWorld(), &syncBuffer{}, nil, "")
	if err == nil {
		t.Fatal("serveWorker accepted an unparseable address")
	}
}

func TestServeWorkerAlreadyBound(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := serveWorker(context.Background(), l.Addr().String(), tinyServeWorld(), &syncBuffer{}, nil, ""); err == nil {
		t.Fatal("serveWorker bound an address another listener holds")
	}
}

// waitForServing polls the worker's output until it announces its bound
// address, so shutdown tests cannot race worker startup.
func waitForServing(t *testing.T, out *syncBuffer) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(out.String(), "serving simulator backend on") {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("worker never announced its address; output so far: %q", out.String())
}

func TestServeWorkerGracefulContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- serveWorker(ctx, "127.0.0.1:0", tinyServeWorld(), out, nil, "") }()
	waitForServing(t, out)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled worker exited with %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not shut down on context cancellation")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Errorf("worker output missing shutdown notice: %q", out.String())
	}
}

func TestServeWorkerGracefulSIGTERM(t *testing.T) {
	// The same signal context main installs: SIGTERM must cancel it and
	// bring the worker down cleanly, not kill the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- serveWorker(ctx, "127.0.0.1:0", tinyServeWorld(), out, nil, "") }()
	waitForServing(t, out)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM'd worker exited with %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not shut down on SIGTERM")
	}
}

func TestParseBackends(t *testing.T) {
	got, err := parseBackends(" host1:7070, host2:7070 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"host1:7070", "host2:7070"}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseBackends = %v, want %v", got, want)
	}
	if got, err := parseBackends("  "); err != nil || got != nil {
		t.Errorf("blank -backends = %v, %v; want nil, nil", got, err)
	}
	if _, err := parseBackends("host1:7070,,host2:7070"); err == nil {
		t.Error("stray comma in -backends accepted")
	}
}

func TestIsDirPath(t *testing.T) {
	dir := t.TempDir()
	if !isDirPath(dir) {
		t.Error("existing directory not detected")
	}
	if !isDirPath(filepath.Join(dir, "new-logs") + "/") {
		t.Error("trailing-slash path not treated as a directory")
	}
	if isDirPath(filepath.Join(dir, "records.jsonl")) {
		t.Error("nonexistent plain file path treated as a directory")
	}
}

// TestOpenShardLogsAppendClampsTails: append mode must clamp each existing
// shard to its last complete line (dropping a crash-truncated tail) and
// create shards that don't exist yet.
func TestOpenShardLogsAppendClampsTails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, avfi.ShardLogName(0)),
		[]byte("{\"a\":1}\n{\"b\":2}\n{\"c\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := openShardLogs(dir, 2, true, avfi.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, err := f.WriteString("{\"fresh\":true}\n"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shard0, err := os.ReadFile(filepath.Join(dir, avfi.ShardLogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(shard0), "{\"a\":1}\n{\"b\":2}\n{\"fresh\":true}\n"; got != want {
		t.Errorf("shard 0 after clamped append = %q, want %q", got, want)
	}
	shard1, err := os.ReadFile(filepath.Join(dir, avfi.ShardLogName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(shard1), "{\"fresh\":true}\n"; got != want {
		t.Errorf("fresh shard 1 = %q, want %q", got, want)
	}
}

// TestFreshShardRunRefusesInDirResumeSource: resuming from a file inside
// the stream directory without append mode must be refused up front —
// openShardLogs would otherwise delete the resume source, and its
// episodes (never re-sunk) would vanish from the durable log.
func TestFreshShardRunRefusesInDirResumeSource(t *testing.T) {
	dir := t.TempDir()
	resume := filepath.Join(dir, avfi.ShardLogName(0))
	if err := os.WriteFile(resume, []byte("{\"Injector\":\"noinject\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Args = []string{"avfi", "-resume", resume, "-stream-records", dir, "-missions", "1", "-reps", "1"}
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	err := run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "lives inside the -stream-records directory") {
		t.Fatalf("run = %v, want refusal to delete the in-directory resume source", err)
	}
	if _, statErr := os.Stat(resume); statErr != nil {
		t.Errorf("resume source was destroyed: %v", statErr)
	}
}

// TestOpenShardLogsFreshRemovesStaleShards: a fresh (non-resume) sharded
// run must clear every previous records-*.jsonl, not just truncate its
// own n — a prior larger run's higher-numbered shards would otherwise be
// silently ingested by a later -resume or merge of the directory.
func TestOpenShardLogsFreshRemovesStaleShards(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		if err := os.WriteFile(filepath.Join(dir, avfi.ShardLogName(i)),
			[]byte("{\"stale\":true}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := openShardLogs(dir, 2, false, avfi.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	left, err := filepath.Glob(filepath.Join(dir, "records-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Errorf("fresh run left %d shard logs (%v), want exactly its own 2", len(left), left)
	}
	for _, path := range left {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 0 {
			t.Errorf("%s not truncated: %q", filepath.Base(path), data)
		}
	}
}

// binaryLog encodes records through the binary sink for shard fixtures.
func binaryLog(t *testing.T, recs []avfi.EpisodeRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := avfi.NewBinarySink(&buf)
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOpenShardLogsBinaryAppendClampsFrames: append mode on binary shards
// must clamp each existing log to its last complete frame (dropping a
// crash-truncated tail) before appending.
func TestOpenShardLogsBinaryAppendClampsFrames(t *testing.T) {
	dir := t.TempDir()
	whole := binaryLog(t, []avfi.EpisodeRecord{
		{Injector: "noinject", Mission: 0, Seed: 1},
		{Injector: "noinject", Mission: 1, Seed: 2},
	})
	// Leave half of the second frame as the crash tail.
	complete := binaryLog(t, []avfi.EpisodeRecord{{Injector: "noinject", Mission: 0, Seed: 1}})
	cut := len(complete) + (len(whole)-len(complete))/2
	if err := os.WriteFile(filepath.Join(dir, avfi.BinaryShardLogName(0)), whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	files, err := openShardLogs(dir, 2, true, avfi.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	fresh := binaryLog(t, []avfi.EpisodeRecord{{Injector: "gaussian", Mission: 0, Seed: 9}})
	for _, f := range files {
		if _, err := f.Write(fresh); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shard0, err := os.ReadFile(filepath.Join(dir, avfi.BinaryShardLogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append([]byte(nil), complete...), fresh...); !bytes.Equal(shard0, want) {
		t.Errorf("shard 0 after clamped append = %x, want %x", shard0, want)
	}
	recs, err := avfi.LoadRecords(bytes.NewReader(shard0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("clamped-and-appended shard holds %d records, want 2", len(recs))
	}
}

// TestOpenShardLogsFreshRemovesBothFormats: a fresh sharded run must clear
// stale shard logs of BOTH formats — a prior run of the other encoding
// would otherwise be silently ingested by a later -resume or merge.
func TestOpenShardLogsFreshRemovesBothFormats(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(filepath.Join(dir, avfi.ShardLogName(i)),
			[]byte("{\"stale\":true}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, avfi.BinaryShardLogName(i)),
			binaryLog(t, []avfi.EpisodeRecord{{Injector: "stale"}}), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := openShardLogs(dir, 2, false, avfi.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	left, err := filepath.Glob(filepath.Join(dir, "records-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Errorf("fresh run left %d shard logs (%v), want exactly its own 2", len(left), left)
	}
	for _, path := range left {
		if filepath.Ext(path) != ".bin" {
			t.Errorf("stale shard log survived the fresh run: %s", path)
		}
	}
}

// TestResolveStreamFormat pins the format-selection policy: binary for
// fresh runs, adoption of the existing log's format when appending, and a
// refusal when an explicit flag contradicts what is on disk.
func TestResolveStreamFormat(t *testing.T) {
	if got, err := resolveStreamFormat(avfi.FormatAuto, "fresh.log", false); err != nil || got != avfi.FormatBinary {
		t.Errorf("fresh auto = %v, %v; want binary", got, err)
	}
	if got, err := resolveStreamFormat(avfi.FormatJSONL, "fresh.log", false); err != nil || got != avfi.FormatJSONL {
		t.Errorf("fresh explicit jsonl = %v, %v; want jsonl", got, err)
	}

	dir := t.TempDir()
	jsonlLog := filepath.Join(dir, "records.jsonl")
	if err := os.WriteFile(jsonlLog, []byte("{\"Injector\":\"noinject\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := resolveStreamFormat(avfi.FormatAuto, jsonlLog, true); err != nil || got != avfi.FormatJSONL {
		t.Errorf("append auto over jsonl = %v, %v; want adopted jsonl", got, err)
	}
	if _, err := resolveStreamFormat(avfi.FormatBinary, jsonlLog, true); err == nil {
		t.Error("appending binary to an existing jsonl log accepted")
	}

	shardDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(shardDir, avfi.BinaryShardLogName(0)),
		binaryLog(t, []avfi.EpisodeRecord{{Injector: "noinject"}}), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := resolveStreamFormat(avfi.FormatAuto, shardDir, true); err != nil || got != avfi.FormatBinary {
		t.Errorf("append auto over binary shard dir = %v, %v; want adopted binary", got, err)
	}

	// Nothing on disk to adopt: appending still defaults to binary.
	if got, err := resolveStreamFormat(avfi.FormatAuto, filepath.Join(dir, "absent.log"), true); err != nil || got != avfi.FormatBinary {
		t.Errorf("append auto over nothing = %v, %v; want binary", got, err)
	}
}
