// Command avfi runs AVFI fault-injection campaigns from the command line.
//
// Usage:
//
//	avfi -injectors noinject,gaussian,outputdelay -missions 6 -reps 2
//	avfi -injectors all -records-csv records.csv -reports-csv reports.csv
//	avfi -agent model.avfi -tcp -seed 7
//
// Without -agent, the driving agent is trained in-process from the oracle
// autopilot first (about a minute); save one with avfi-train to skip that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avfi: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		injectors  = flag.String("injectors", "noinject,gaussian,saltpepper,solidocc,transpocc,waterdrop", "comma-separated injector names, or 'all'")
		listInj    = flag.Bool("list", false, "list registered injectors and exit")
		missions   = flag.Int("missions", 6, "number of navigation missions")
		reps       = flag.Int("reps", 2, "repetitions (seeds) per mission and injector")
		npcs       = flag.Int("npcs", 0, "NPC vehicles per episode")
		peds       = flag.Int("peds", 0, "pedestrians per episode")
		weather    = flag.String("weather", "clear", "weather: clear|rain|fog")
		useTCP     = flag.Bool("tcp", false, "run episodes over loopback TCP instead of in-process pipes")
		seed       = flag.Uint64("seed", 1, "campaign seed (results are a pure function of it)")
		agentPath  = flag.String("agent", "", "load a trained agent from this file (default: train in-process)")
		recordsCSV = flag.String("records-csv", "", "write per-episode records CSV here")
		reportsCSV = flag.String("reports-csv", "", "write per-injector reports CSV here")
		jsonPath   = flag.String("json", "", "write the full result set as JSON here")
		parallel   = flag.Int("parallel", 0, "concurrent episodes (0 = NumCPU)")
	)
	flag.Parse()

	if *listInj {
		for _, name := range avfi.RegisteredInjectors() {
			fmt.Println(name)
		}
		return nil
	}

	var sources []avfi.InjectorSource
	if *injectors == "all" {
		for _, name := range avfi.RegisteredInjectors() {
			sources = append(sources, avfi.Injector(name))
		}
	} else {
		for _, name := range strings.Split(*injectors, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				sources = append(sources, avfi.Injector(name))
			}
		}
	}

	w, err := parseWeather(*weather)
	if err != nil {
		return err
	}

	agentSrc, err := agentSource(*agentPath)
	if err != nil {
		return err
	}

	cfg := avfi.CampaignConfig{
		World:          avfi.DefaultWorldConfig(),
		Agent:          agentSrc,
		Injectors:      sources,
		Missions:       *missions,
		Repetitions:    *reps,
		NumNPCs:        *npcs,
		NumPedestrians: *peds,
		Weather:        w,
		UseTCP:         *useTCP,
		Parallelism:    *parallel,
		Seed:           *seed,
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running %d injectors x %d missions x %d reps...\n",
		len(sources), *missions, *reps)
	rs, err := runner.Run()
	if err != nil {
		return err
	}

	avfi.PrintTable(os.Stdout, fmt.Sprintf("AVFI campaign (seed %d)", *seed), rs.Reports)

	if *recordsCSV != "" {
		if err := writeFile(*recordsCSV, func(f *os.File) error {
			return avfi.WriteRecordsCSV(f, rs.Records)
		}); err != nil {
			return err
		}
	}
	if *reportsCSV != "" {
		if err := writeFile(*reportsCSV, func(f *os.File) error {
			return avfi.WriteReportsCSV(f, rs.Reports)
		}); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f *os.File) error {
			return avfi.WriteJSON(f, rs)
		}); err != nil {
			return err
		}
	}
	return nil
}

func parseWeather(s string) (avfi.Weather, error) {
	switch s {
	case "clear":
		return avfi.WeatherClear, nil
	case "rain":
		return avfi.WeatherRain, nil
	case "fog":
		return avfi.WeatherFog, nil
	default:
		return avfi.WeatherClear, fmt.Errorf("unknown weather %q", s)
	}
}

func agentSource(path string) (avfi.AgentSource, error) {
	if path == "" {
		spec := avfi.DefaultPretrainSpec()
		return avfi.AgentSource{Pretrain: &spec}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	defer f.Close()
	a, err := avfi.LoadAgent(f)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	return avfi.AgentSource{Agent: a}, nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
