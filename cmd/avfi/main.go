// Command avfi runs AVFI fault-injection campaigns from the command line.
//
// Usage:
//
//	avfi -injectors noinject,gaussian,outputdelay -missions 6 -reps 2
//	avfi -injectors all -records-csv records.csv -reports-csv reports.csv
//	avfi -injectors taxonomy,class:comm -matrix -activations 0,30
//	avfi -agent model.avfi -tcp -seed 7
//	avfi -matrix -weathers clear,rain -densities 0x0,8x4 -aeb both
//	avfi -engines 4 -retries 2 -stream-records records.jsonl
//	avfi -matrix -weathers clear,rain,fog -adaptive -policy ucb -budget 256
//	avfi -resume records.jsonl -stream-records records.jsonl
//	avfi -serve 0.0.0.0:7070                      # simulator worker
//	avfi -backends host1:7070,host2:7070 -retries 3 -stream-records logs/
//	avfi -resume logs/ -stream-records logs/ -backends host1:7070,host2:7070
//	avfi -status-addr :6060 -v ...                # live /metrics, /statusz, pprof
//
// -status-addr exposes live observability for the process — orchestrator
// and -serve worker alike: /metrics (Prometheus text exposition),
// /statusz (JSON: campaign progress, per-engine health, adaptive round
// state; worker connection counts under -serve), /healthz, and
// /debug/pprof. -v raises logging from warnings to info (episode retries,
// engine lifecycle); -slow-episode logs episodes slower than a threshold.
//
// -serve turns the process into a standalone simulator worker: it accepts
// campaign connections on the given address for its whole lifetime (each
// connection gets its own session-multiplexed engine) until SIGINT/SIGTERM.
// -backends points a campaign at such workers: instead of spawning
// in-process engines, the pool dials the listed addresses round-robin —
// health checks, bounded retry and dead-worker replacement included — and
// produces results bit-identical to the in-process run for the same seed
// (the workers must run the same world configuration, which for avfi
// binaries is always DefaultWorldConfig).
//
// With -matrix, the flat (injector x mission x repetition) grid becomes a
// scenario matrix: every combination of -weathers, -densities, -aeb,
// -activations and -injectors is swept as its own campaign column. All
// episodes ride a pool of persistent session-multiplexed engines — one
// connection per engine (-engines, default 1 in-process, one per backend
// with -backends; and, with -tcp, one listener each) for the entire
// campaign, with least-loaded dispatch, bounded episode retry (-retries)
// and replacement of dead backends. Results are identical at any pool size
// for the same seed. -stream-records streams every episode to a record log
// as it completes; given a directory (trailing slash, or an existing
// directory) it shards the stream instead — one log per engine slot,
// written by independent aggregation goroutines, mergeable back into the
// canonical single log with avfi-records (or MergeRecords). Fresh runs
// write the compact binary record format by default; -record-format jsonl
// keeps the text encoding, and every reader (-resume, avfi-records)
// auto-detects the format per file, so logs of both kinds mix freely.
// Combined with neither -records-csv nor -json, the campaign aggregates
// incrementally, keeping only a small fixed-size statistics digest per
// episode instead of full records.
//
// -adaptive replaces the exhaustive sweep with the risk-driven
// orchestrator: rounds of -round episodes are allocated over scenario
// cells by -policy (uniform|halving|ucb) from the violation statistics
// observed so far, within a total budget of -budget episodes (0 = the
// full grid). A per-round progress line reports where the budget went.
//
// -resume streams an episode log — or a whole shard directory — from an
// earlier partial run (crash-truncated tails are dropped, format detected
// per file): recorded episodes are not re-run, their statistics seed the
// reports — and, with -adaptive, the allocation posteriors — one record at
// a time, so resuming costs O(1) memory at any campaign size. Resuming
// into the same -stream-records file or directory appends the fresh
// episodes to the log(s) instead of truncating them.
//
// Without -agent, the driving agent is trained in-process from the oracle
// autopilot first (about a minute); save one with avfi-train to skip that.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/avfi/avfi"
)

func main() {
	// SIGINT/SIGTERM cancel the campaign (in-flight episodes finish, the
	// rest is abandoned — resumable from the streamed log) and gracefully
	// stop a -serve worker.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "avfi: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		injectors  = flag.String("injectors", "noinject,gaussian,saltpepper,solidocc,transpocc,waterdrop", "comma-separated injector names, 'class:FAMILY' selectors, 'taxonomy' (one per family), or 'all'")
		listInj    = flag.Bool("list", false, "list registered injectors and exit")
		missions   = flag.Int("missions", 6, "number of navigation missions")
		reps       = flag.Int("reps", 2, "repetitions (seeds) per mission and injector")
		npcs       = flag.Int("npcs", 0, "NPC vehicles per episode")
		peds       = flag.Int("peds", 0, "pedestrians per episode")
		weather    = flag.String("weather", "clear", "weather: clear|rain|fog")
		matrix     = flag.Bool("matrix", false, "sweep a scenario matrix instead of the flat injector grid")
		weathers   = flag.String("weathers", "clear", "matrix weather levels, comma-separated")
		densities  = flag.String("densities", "0x0", "matrix traffic densities as NPCSxPEDS pairs, e.g. 0x0,8x4")
		aebMode    = flag.String("aeb", "off", "matrix AEB levels: off|on|both")
		activation = flag.String("activations", "0", "matrix fault-activation frames, comma-separated")
		useTCP     = flag.Bool("tcp", false, "run episodes over loopback TCP instead of in-process pipes")
		seed       = flag.Uint64("seed", 1, "campaign seed (results are a pure function of it)")
		agentPath  = flag.String("agent", "", "load a trained agent from this file (default: train in-process)")
		recordsCSV = flag.String("records-csv", "", "write per-episode records CSV here")
		reportsCSV = flag.String("reports-csv", "", "write per-injector reports CSV here")
		jsonPath   = flag.String("json", "", "write the full result set as JSON here")
		parallel   = flag.Int("parallel", 0, "concurrent episodes (0 = NumCPU)")
		engines    = flag.Int("engines", 0, "persistent engines in the pool, each its own server+connection (0 = auto: one per -backends worker, else 1)")
		retries    = flag.Int("retries", 0, "per-episode retries after transient engine failures")
		streamPath = flag.String("stream-records", "", "stream per-episode records to this JSONL file as they complete; without -records-csv/-json, records are not retained in memory")
		adaptiveOn = flag.Bool("adaptive", false, "risk-driven episode allocation instead of the exhaustive sweep")
		policyName = flag.String("policy", "ucb", "adaptive allocation policy: uniform|halving|ucb")
		budget     = flag.Int("budget", 0, "adaptive total episode budget (0 = the full scenario grid)")
		roundSize  = flag.Int("round", 0, "adaptive episodes per plan/observe/reallocate round (0 = auto)")
		resumePath = flag.String("resume", "", "resume from this episode log (or shard directory, either record format): recorded episodes are not re-run")
		recordFmt  = flag.String("record-format", "auto", "record log format for -stream-records: jsonl|binary (auto = binary for a fresh run, the existing log's format when appending)")
		serveAddr  = flag.String("serve", "", "run as a simulator worker on this address (e.g. :7070) instead of a campaign")
		joinURL    = flag.String("join", "", "with -serve: announce this worker to a campaign service at this base URL (e.g. http://host:8080), retrying until the service is up")
		svcAddr    = flag.String("service", "", "run as a long-lived campaign service on this address (e.g. :8080): workers announce via POST /workers, campaigns submit via POST /campaigns, all sharing /metrics and /statusz")
		backends   = flag.String("backends", "", "comma-separated remote worker addresses; the campaign dials these instead of spawning in-process engines")
		fullFrames = flag.Bool("full-frames", false, "disable delta-encoded sensor frames (diagnostic; results are bit-identical either way)")
		statusAddr = flag.String("status-addr", "", "serve live observability on this address (e.g. :6060): /metrics, /statusz, /healthz, /debug/pprof — for campaigns and -serve workers alike")
		verbose    = flag.Bool("v", false, "verbose logging (episode retries, engine lifecycle); default logs warnings only")
		slowEp     = flag.Duration("slow-episode", 2*time.Minute, "log a warning for episodes slower than this (0 disables)")
	)
	flag.Parse()

	if *verbose {
		avfi.SetLogLevel(avfi.LogInfo)
	}
	if *svcAddr != "" {
		if *serveAddr != "" {
			return fmt.Errorf("-service and -serve are mutually exclusive (a process is the control plane or a worker, not both)")
		}
		if *statusAddr != "" {
			return fmt.Errorf("-service serves /metrics and /statusz on its own address; drop -status-addr")
		}
	}
	if *joinURL != "" && *serveAddr == "" {
		return fmt.Errorf("-join requires -serve (only workers announce themselves)")
	}
	var statusSrv *avfi.TelemetryServer
	if *statusAddr != "" {
		var err error
		if statusSrv, err = avfi.ServeTelemetry(*statusAddr); err != nil {
			return err
		}
		defer statusSrv.Close()
		fmt.Fprintf(os.Stderr, "status: serving /metrics /statusz /healthz /debug/pprof on %s\n", statusSrv.Addr())
	}

	if *listInj {
		for _, name := range avfi.RegisteredInjectors() {
			fmt.Println(name)
		}
		return nil
	}

	if *svcAddr != "" {
		agentSrc, err := agentSource(*agentPath)
		if err != nil {
			return err
		}
		return runService(ctx, *svcAddr, agentSrc, *parallel, *retries, os.Stderr)
	}
	if *serveAddr != "" {
		return serveWorker(ctx, *serveAddr, avfi.DefaultWorldConfig(), os.Stderr, statusSrv, *joinURL)
	}
	backendList, err := parseBackends(*backends)
	if err != nil {
		return err
	}

	sources, err := parseInjectors(*injectors)
	if err != nil {
		return err
	}

	w, err := parseWeather(*weather)
	if err != nil {
		return err
	}

	// Resolve the policy before the expensive world/agent setup so a flag
	// typo fails in milliseconds, not after minutes of training.
	var policy avfi.AdaptivePolicy
	if *adaptiveOn {
		if policy, err = avfi.ParseAdaptivePolicy(*policyName); err != nil {
			return err
		}
	}

	agentSrc, err := agentSource(*agentPath)
	if err != nil {
		return err
	}

	cfg := avfi.CampaignConfig{
		World:          avfi.DefaultWorldConfig(),
		Agent:          agentSrc,
		Injectors:      sources,
		Missions:       *missions,
		Repetitions:    *reps,
		NumNPCs:        *npcs,
		NumPedestrians: *peds,
		Weather:        w,
		UseTCP:         *useTCP,
		Parallelism:    *parallel,
		Pool:           avfi.PoolConfig{Engines: *engines, MaxRetries: *retries, Backends: backendList, FullFrames: *fullFrames},
		SlowEpisode:    *slowEp,
		Seed:           *seed,
	}
	var resumeCount int
	if *resumePath != "" {
		// Stream the prior log instead of materializing it: the campaign
		// seeds its builders record by record (format auto-detected per
		// file), so resuming a million-episode log costs one fd and one
		// record of memory.
		stream, err := avfi.OpenRecordsPath(*resumePath)
		if err != nil {
			return err
		}
		defer stream.Close()
		cfg.ResumeFrom = countSource{src: stream, n: &resumeCount}
		fmt.Fprintf(os.Stderr, "resuming: streaming episodes already on record in %s\n", *resumePath)
	}
	var streamFiles []*os.File
	if *streamPath != "" {
		format, err := avfi.ParseRecordFormat(*recordFmt)
		if err != nil {
			return err
		}
		appendMode := *resumePath != "" && sameFile(*streamPath, *resumePath)
		if format, err = resolveStreamFormat(format, *streamPath, appendMode); err != nil {
			return err
		}
		if isDirPath(*streamPath) {
			// A fresh sharded run clears the directory's old shard logs —
			// which would destroy a resume source living inside it before
			// its episodes were re-streamed (seeded records are never
			// re-sunk). Refuse rather than silently hole the durable log.
			if !appendMode && *resumePath != "" && sameFile(filepath.Dir(*resumePath), *streamPath) {
				return fmt.Errorf("-resume %s lives inside the -stream-records directory %s; resume from the directory itself to append, or stream elsewhere",
					*resumePath, *streamPath)
			}
			// Sharded stream: one record log per engine slot, each written
			// by its own aggregation goroutine. Sized by the scheduler's
			// rule (PoolSize); campaigns small enough for the scheduler to
			// clamp further just leave the surplus shards empty.
			workers := *parallel
			if workers <= 0 {
				workers = runtime.NumCPU()
			}
			files, err := openShardLogs(*streamPath, cfg.Pool.PoolSize(workers), appendMode, format)
			if err != nil {
				return err
			}
			for _, f := range files {
				defer f.Close()
				streamFiles = append(streamFiles, f)
				cfg.ShardSinks = append(cfg.ShardSinks, format.NewRecordSink(f))
			}
		} else {
			var f *os.File
			if appendMode {
				// Continuing the same durable log: clamp away any
				// crash-truncated partial tail (the resume reader dropped it
				// too), then append the fresh episodes — the recorded ones
				// are streamed into the builders and not re-sunk.
				f, err = openClampedForAppend(*streamPath, format)
			} else {
				f, err = os.Create(*streamPath)
			}
			if err != nil {
				return err
			}
			// Backstop for early error returns; the success path closes
			// explicitly below and checks the error (write-back failures can
			// surface at close, and these files are the durable episode log).
			defer f.Close()
			streamFiles = append(streamFiles, f)
			cfg.Sink = format.NewRecordSink(f)
		}
		// With the records streamed to disk and no consumer of the
		// in-memory copy, aggregate incrementally instead of retaining
		// O(episodes) memory.
		cfg.DiscardRecords = *recordsCSV == "" && *jsonPath == ""
	}
	columns := len(sources)
	if *matrix {
		m, err := parseMatrix(sources, *weathers, *densities, *aebMode, *activation)
		if err != nil {
			return err
		}
		cfg.Injectors = nil
		cfg.Matrix = m
		columns = m.Size()
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		return err
	}
	if statusSrv != nil {
		statusSrv.SetStatus("campaign", func() any { return runner.Status() })
	}
	var rs *avfi.ResultSet
	if *adaptiveOn {
		fmt.Fprintf(os.Stderr, "adaptive campaign over %d scenario columns x %d missions x %d reps (policy %s, budget %d)...\n",
			columns, *missions, *reps, policy.Name(), *budget)
		rs, err = runner.RunAdaptive(ctx, avfi.AdaptiveConfig{
			Policy:    policy,
			Budget:    *budget,
			RoundSize: *roundSize,
			RoundProgress: func(s avfi.RoundStats) {
				fmt.Fprintf(os.Stderr, "round %d: %d episodes over %d cells, %d violations; total %d episodes, %d violations\n",
					s.Round, s.Episodes, s.ActiveCells, s.Violations, s.TotalEpisodes, s.TotalViolations)
			},
		})
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "running %d scenario columns x %d missions x %d reps...\n",
			columns, *missions, *reps)
		rs, err = runner.RunContext(ctx)
		if err != nil {
			return err
		}
	}
	if *resumePath != "" {
		fmt.Fprintf(os.Stderr, "resumed: %d episodes were already on record in %s\n", resumeCount, *resumePath)
	}
	// Pool.Engines lists dead and replaced engines too; count live ones.
	poolSize := 0
	for _, es := range rs.Pool.Engines {
		if !es.Dead && !es.Replaced {
			poolSize++
		}
	}
	fmt.Fprintf(os.Stderr, "engine pool: %d episodes over %d %s engine(s), up to %d multiplexed per connection\n",
		rs.Engine.Episodes, poolSize, rs.Engine.Transport, rs.Engine.MaxConcurrentSessions)
	if rs.Pool.Retries > 0 || rs.Pool.Replacements > 0 {
		fmt.Fprintf(os.Stderr, "engine pool: %d episode retries, %d engine replacements\n",
			rs.Pool.Retries, rs.Pool.Replacements)
	}
	if rs.Adaptive != nil {
		top, topEpisodes := "", 0
		for _, c := range rs.Adaptive.Cells {
			if c.Episodes > topEpisodes {
				top, topEpisodes = c.Cell, c.Episodes
			}
		}
		fmt.Fprintf(os.Stderr, "adaptive: policy %s spent %d episodes over %d rounds; top cell %q got %d\n",
			rs.Adaptive.Policy, rs.Adaptive.Budget, len(rs.Adaptive.Rounds), top, topEpisodes)
	}

	avfi.PrintTable(os.Stdout, fmt.Sprintf("AVFI campaign (seed %d)", *seed), rs.Reports)

	if *recordsCSV != "" {
		if err := writeFile(*recordsCSV, func(f *os.File) error {
			return avfi.WriteRecordsCSV(f, rs.Records)
		}); err != nil {
			return err
		}
	}
	if *reportsCSV != "" {
		if err := writeFile(*reportsCSV, func(f *os.File) error {
			return avfi.WriteReportsCSV(f, rs.Reports)
		}); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f *os.File) error {
			return avfi.WriteJSON(f, rs)
		}); err != nil {
			return err
		}
	}
	for _, f := range streamFiles {
		if err := f.Close(); err != nil {
			return fmt.Errorf("stream-records: %w", err)
		}
	}
	return nil
}

// serveWorker runs the process as a standalone simulator worker: a world
// built from wcfg, serving campaign connections on addr until ctx is
// cancelled (SIGINT/SIGTERM in main). The bound address is announced on
// out — with ":0", that line is how callers learn the port. A non-nil
// statusSrv gets a "worker" /statusz section for the worker's lifetime.
func serveWorker(ctx context.Context, addr string, wcfg avfi.WorldConfig, out io.Writer, statusSrv *avfi.TelemetryServer, joinURL string) error {
	w, err := avfi.NewWorld(wcfg)
	if err != nil {
		return err
	}
	worker := avfi.NewSimWorker(w)
	bound, err := worker.Listen(addr)
	if err != nil {
		return err
	}
	if statusSrv != nil {
		statusSrv.SetStatus("worker", func() any { return worker.Status() })
	}
	fmt.Fprintf(out, "worker: serving simulator backend on %s\n", bound)
	if joinURL != "" {
		announce := announceAddr(bound)
		go func() {
			if err := announceWorker(ctx, joinURL, announce); err != nil {
				// The worker keeps serving either way: a campaign can still
				// dial it directly via -backends.
				fmt.Fprintf(out, "worker: announce to %s failed: %v\n", joinURL, err)
				return
			}
			fmt.Fprintf(out, "worker: announced %s to %s\n", announce, joinURL)
		}()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			worker.Close()
		case <-done:
		}
	}()
	err = worker.Serve()
	if ctx.Err() != nil {
		fmt.Fprintf(out, "worker: shut down after %d connection(s)\n", worker.ConnsServed())
		return nil
	}
	return err
}

// runService runs the process as the long-lived campaign control plane:
// one shared engine fleet, a worker announce endpoint, and the campaign
// submit/status/results API — all mounted on the telemetry endpoint so a
// single address serves the API, /metrics, /statusz and pprof. Blocks
// until SIGINT/SIGTERM.
func runService(ctx context.Context, addr string, agentSrc avfi.AgentSource, parallel, retries int, out io.Writer) error {
	svc, err := avfi.NewCampaignService(avfi.CampaignServiceConfig{
		World:          avfi.DefaultWorldConfig(),
		Agent:          agentSrc,
		Parallelism:    parallel,
		DefaultRetries: retries,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	srv, err := avfi.ServeTelemetry(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	h := svc.Handler()
	srv.Handle("/campaigns", h)
	srv.Handle("/campaigns/", h)
	srv.Handle("/workers", h)
	srv.SetStatus("service", func() any { return svc.Status() })
	fmt.Fprintf(out, "service: campaign control plane on %s (POST /workers to join, POST /campaigns to submit; /metrics, /statusz)\n", srv.Addr())
	<-ctx.Done()
	fmt.Fprintln(out, "service: shutting down")
	return nil
}

// announceAddr rewrites a worker's bound listen address into one a
// service on the same host (or CI runner) can dial back: an unspecified
// host (":7070", "0.0.0.0:7070", "[::]:7070") becomes loopback. Workers
// reachable only on a specific interface should -serve that address
// explicitly.
func announceAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}

// announceWorker POSTs the worker's address to the service's /workers
// endpoint, retrying while the service is still coming up. The budget
// is generous because a freshly launched service may train its agent
// in-process for minutes before it starts listening. A 409 means the
// service rejected the pairing outright (world-configuration mismatch)
// — retrying cannot help, so it fails immediately.
func announceWorker(ctx context.Context, baseURL, addr string) error {
	const attempts = 600
	url := strings.TrimSuffix(baseURL, "/") + "/workers"
	body := fmt.Sprintf(`{"addr":%q}`+"\n", addr)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Second):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusConflict:
			return fmt.Errorf("service rejected this worker: %s", strings.TrimSpace(string(msg)))
		default:
			lastErr = fmt.Errorf("announce: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	}
	return fmt.Errorf("giving up after %d attempts: %w", attempts, lastErr)
}

// parseInjectors expands the -injectors selector into campaign columns.
// Each comma-separated entry is an injector name, "class:FAMILY" (every
// registered injector of one fault class — see avfi.FaultClasses), "all",
// or "taxonomy" (one representative per class plus the baseline).
func parseInjectors(s string) ([]avfi.InjectorSource, error) {
	var sources []avfi.InjectorSource
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		switch {
		case entry == "":
		case entry == "all":
			for _, name := range avfi.RegisteredInjectors() {
				sources = append(sources, avfi.Injector(name))
			}
		case entry == "taxonomy":
			sources = append(sources, avfi.FaultTaxonomySuite()...)
		case strings.HasPrefix(entry, "class:"):
			names, err := avfi.InjectorsByClass(strings.TrimPrefix(entry, "class:"))
			if err != nil {
				return nil, fmt.Errorf("-injectors %q: %w", entry, err)
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("-injectors %q matches no registered injector", entry)
			}
			for _, name := range names {
				sources = append(sources, avfi.Injector(name))
			}
		default:
			sources = append(sources, avfi.Injector(entry))
		}
	}
	return sources, nil
}

// parseBackends splits the -backends list, rejecting empty entries (the
// typo signature of a stray comma).
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("-backends %q has an empty address", s)
		}
		out = append(out, a)
	}
	return out, nil
}

// isDirPath reports whether path names a directory — an existing one, or
// one spelled with a trailing separator (the caller will create it).
func isDirPath(path string) bool {
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, string(os.PathSeparator)) {
		return true
	}
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// countSource counts the records a resume stream yields, so the CLI can
// report how many episodes were skipped without materializing the log.
type countSource struct {
	src avfi.RecordSource
	n   *int
}

// Read implements avfi.RecordSource.
func (c countSource) Read() (avfi.EpisodeRecord, error) {
	rec, err := c.src.Read()
	if err == nil {
		*c.n++
	}
	return rec, err
}

// resolveStreamFormat pins down the record format a -stream-records run
// writes. A fresh run defaults to binary (the hot-path encoding); an
// appending run adopts the existing log's format — and refuses an
// explicit -record-format that contradicts it, since the clamp-and-append
// machinery assumes one format per log file.
func resolveStreamFormat(format avfi.RecordFormat, path string, appendMode bool) (avfi.RecordFormat, error) {
	existing := avfi.FormatAuto
	if appendMode {
		var err error
		if existing, err = sniffStreamFormat(path); err != nil {
			return format, err
		}
	}
	switch {
	case existing == avfi.FormatAuto:
		// Nothing on disk to adopt: the writer's default is binary.
		if format == avfi.FormatAuto {
			format = avfi.FormatBinary
		}
	case format == avfi.FormatAuto:
		format = existing
	case format != existing:
		return format, fmt.Errorf("-record-format %s contradicts the existing %s log %s; convert it with avfi-records or stream elsewhere",
			format, existing, path)
	}
	return format, nil
}

// sniffStreamFormat detects the record format already on disk at a
// -stream-records target: the file's own leading byte, or a shard
// directory's first shard log's. FormatAuto means nothing is there yet.
func sniffStreamFormat(path string) (avfi.RecordFormat, error) {
	target := path
	if isDirPath(path) {
		var shards []string
		for _, pattern := range []string{"records-*.jsonl", "records-*.bin"} {
			part, err := filepath.Glob(filepath.Join(path, pattern))
			if err != nil {
				return avfi.FormatAuto, err
			}
			shards = append(shards, part...)
		}
		if len(shards) == 0 {
			return avfi.FormatAuto, nil
		}
		sort.Strings(shards)
		target = shards[0]
	}
	f, err := os.Open(target)
	if err != nil {
		if os.IsNotExist(err) {
			return avfi.FormatAuto, nil
		}
		return avfi.FormatAuto, err
	}
	defer f.Close()
	prefix := make([]byte, 1)
	n, err := f.Read(prefix)
	if err != nil && err != io.EOF {
		return avfi.FormatAuto, err
	}
	return avfi.SniffRecordFormat(prefix[:n]), nil
}

// openShardLogs opens n shard logs inside dir (named by the format),
// creating it as needed. In append mode existing shards are clamped to
// their last complete record boundary and appended to (the resume reader
// dropped the partial tail too). Otherwise this is a fresh campaign:
// every existing shard log — both formats — is removed first. Truncating
// only the first n would leave a previous, larger run's higher-numbered
// shards on disk for a later -resume or merge to silently ingest, and a
// prior run of the other format would survive a same-format-only sweep
// the same way. On any failure the already-opened files are closed.
func openShardLogs(dir string, n int, appendMode bool, format avfi.RecordFormat) ([]*os.File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if !appendMode {
		for _, pattern := range []string{"records-*.jsonl", "records-*.bin"} {
			stale, err := filepath.Glob(filepath.Join(dir, pattern))
			if err != nil {
				return nil, err
			}
			for _, path := range stale {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
			}
		}
	}
	var files []*os.File
	fail := func(err error) ([]*os.File, error) {
		for _, f := range files {
			f.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, format.ShardLogName(i))
		var f *os.File
		var err error
		if appendMode {
			if _, statErr := os.Stat(path); statErr == nil {
				f, err = openClampedForAppend(path, format)
			} else {
				f, err = os.Create(path)
			}
		} else {
			f, err = os.Create(path)
		}
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}
	return files, nil
}

// openClampedForAppend opens an existing log for appending after clamping
// away any crash-truncated partial tail.
func openClampedForAppend(path string, format avfi.RecordFormat) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if format == avfi.FormatBinary {
		err = clampToCompleteFrames(f)
	} else {
		err = clampToCompleteLines(f)
	}
	if err == nil {
		_, err = f.Seek(0, io.SeekEnd)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// clampToCompleteFrames truncates f to the end of its last complete
// binary record frame — the binary counterpart of clampToCompleteLines.
func clampToCompleteFrames(f *os.File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	good, err := avfi.CompleteBinaryPrefixLen(f)
	if err != nil {
		return err
	}
	return f.Truncate(good)
}

// parseMatrix assembles the -matrix scenario space from its flag values.
func parseMatrix(sources []avfi.InjectorSource, weathers, densities, aebMode, activations string) (*avfi.ScenarioMatrix, error) {
	m := &avfi.ScenarioMatrix{Injectors: sources}
	for _, s := range strings.Split(weathers, ",") {
		w, err := parseWeather(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		m.Weathers = append(m.Weathers, w)
	}
	for _, s := range strings.Split(densities, ",") {
		var d avfi.Density
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%dx%d", &d.NPCs, &d.Pedestrians); err != nil {
			return nil, fmt.Errorf("bad density %q (want NPCSxPEDS, e.g. 8x4)", s)
		}
		m.Densities = append(m.Densities, d)
	}
	switch aebMode {
	case "off":
		m.AEB = []bool{false}
	case "on":
		m.AEB = []bool{true}
	case "both":
		m.AEB = []bool{false, true}
	default:
		return nil, fmt.Errorf("bad -aeb %q (want off|on|both)", aebMode)
	}
	for _, s := range strings.Split(activations, ",") {
		var frame int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &frame); err != nil {
			return nil, fmt.Errorf("bad activation frame %q", s)
		}
		m.ActivationFrames = append(m.ActivationFrames, frame)
	}
	return m, nil
}

func parseWeather(s string) (avfi.Weather, error) {
	switch s {
	case "clear":
		return avfi.WeatherClear, nil
	case "rain":
		return avfi.WeatherRain, nil
	case "fog":
		return avfi.WeatherFog, nil
	default:
		return avfi.WeatherClear, fmt.Errorf("unknown weather %q", s)
	}
}

func agentSource(path string) (avfi.AgentSource, error) {
	if path == "" {
		spec := avfi.DefaultPretrainSpec()
		return avfi.AgentSource{Pretrain: &spec}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	defer f.Close()
	a, err := avfi.LoadAgent(f)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	return avfi.AgentSource{Agent: a}, nil
}

// sameFile reports whether two paths name the same underlying file —
// spelled identically or not (relative vs absolute, symlinks). A path
// that doesn't stat (e.g. the stream file doesn't exist yet) is not the
// same file as anything.
func sameFile(a, b string) bool {
	ai, err := os.Stat(a)
	if err != nil {
		return false
	}
	bi, err := os.Stat(b)
	if err != nil {
		return false
	}
	return os.SameFile(ai, bi)
}

// clampToCompleteLines truncates f to the end of its last complete
// (newline-terminated) line, so appending after a crash mid-write cannot
// concatenate a fresh record onto a partial one and corrupt the log
// mid-file. The partial tail holds no complete record by definition —
// dropping it loses nothing the resume loader kept.
func clampToCompleteLines(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	const chunk = 64 * 1024
	buf := make([]byte, chunk)
	for end := size; end > 0; {
		n := int64(chunk)
		if end < n {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			return f.Truncate(end - n + int64(i) + 1)
		}
		end -= n
	}
	return f.Truncate(0)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
