// Command avfi runs AVFI fault-injection campaigns from the command line.
//
// Usage:
//
//	avfi -injectors noinject,gaussian,outputdelay -missions 6 -reps 2
//	avfi -injectors all -records-csv records.csv -reports-csv reports.csv
//	avfi -agent model.avfi -tcp -seed 7
//	avfi -matrix -weathers clear,rain -densities 0x0,8x4 -aeb both
//	avfi -engines 4 -retries 2 -stream-records records.jsonl
//
// With -matrix, the flat (injector x mission x repetition) grid becomes a
// scenario matrix: every combination of -weathers, -densities, -aeb,
// -activations and -injectors is swept as its own campaign column. All
// episodes ride a pool of persistent session-multiplexed engines — one
// connection per engine (-engines, default 1; and, with -tcp, one listener
// each) for the entire campaign, with least-loaded dispatch, bounded
// episode retry (-retries) and replacement of dead backends. Results are
// identical at any pool size for the same seed. -stream-records streams
// every episode to a JSONL file as it completes; combined with neither
// -records-csv nor -json, the campaign aggregates incrementally, keeping
// only a small fixed-size statistics digest per episode instead of full
// records.
//
// Without -agent, the driving agent is trained in-process from the oracle
// autopilot first (about a minute); save one with avfi-train to skip that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/avfi/avfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "avfi: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		injectors  = flag.String("injectors", "noinject,gaussian,saltpepper,solidocc,transpocc,waterdrop", "comma-separated injector names, or 'all'")
		listInj    = flag.Bool("list", false, "list registered injectors and exit")
		missions   = flag.Int("missions", 6, "number of navigation missions")
		reps       = flag.Int("reps", 2, "repetitions (seeds) per mission and injector")
		npcs       = flag.Int("npcs", 0, "NPC vehicles per episode")
		peds       = flag.Int("peds", 0, "pedestrians per episode")
		weather    = flag.String("weather", "clear", "weather: clear|rain|fog")
		matrix     = flag.Bool("matrix", false, "sweep a scenario matrix instead of the flat injector grid")
		weathers   = flag.String("weathers", "clear", "matrix weather levels, comma-separated")
		densities  = flag.String("densities", "0x0", "matrix traffic densities as NPCSxPEDS pairs, e.g. 0x0,8x4")
		aebMode    = flag.String("aeb", "off", "matrix AEB levels: off|on|both")
		activation = flag.String("activations", "0", "matrix fault-activation frames, comma-separated")
		useTCP     = flag.Bool("tcp", false, "run episodes over loopback TCP instead of in-process pipes")
		seed       = flag.Uint64("seed", 1, "campaign seed (results are a pure function of it)")
		agentPath  = flag.String("agent", "", "load a trained agent from this file (default: train in-process)")
		recordsCSV = flag.String("records-csv", "", "write per-episode records CSV here")
		reportsCSV = flag.String("reports-csv", "", "write per-injector reports CSV here")
		jsonPath   = flag.String("json", "", "write the full result set as JSON here")
		parallel   = flag.Int("parallel", 0, "concurrent episodes (0 = NumCPU)")
		engines    = flag.Int("engines", 1, "persistent engines in the pool (each its own server+connection)")
		retries    = flag.Int("retries", 0, "per-episode retries after transient engine failures")
		streamPath = flag.String("stream-records", "", "stream per-episode records to this JSONL file as they complete; without -records-csv/-json, records are not retained in memory")
	)
	flag.Parse()

	if *listInj {
		for _, name := range avfi.RegisteredInjectors() {
			fmt.Println(name)
		}
		return nil
	}

	var sources []avfi.InjectorSource
	if *injectors == "all" {
		for _, name := range avfi.RegisteredInjectors() {
			sources = append(sources, avfi.Injector(name))
		}
	} else {
		for _, name := range strings.Split(*injectors, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				sources = append(sources, avfi.Injector(name))
			}
		}
	}

	w, err := parseWeather(*weather)
	if err != nil {
		return err
	}

	agentSrc, err := agentSource(*agentPath)
	if err != nil {
		return err
	}

	cfg := avfi.CampaignConfig{
		World:          avfi.DefaultWorldConfig(),
		Agent:          agentSrc,
		Injectors:      sources,
		Missions:       *missions,
		Repetitions:    *reps,
		NumNPCs:        *npcs,
		NumPedestrians: *peds,
		Weather:        w,
		UseTCP:         *useTCP,
		Parallelism:    *parallel,
		Pool:           avfi.PoolConfig{Engines: *engines, MaxRetries: *retries},
		Seed:           *seed,
	}
	var streamFile *os.File
	if *streamPath != "" {
		f, err := os.Create(*streamPath)
		if err != nil {
			return err
		}
		// Backstop for early error returns; the success path closes
		// explicitly below and checks the error (write-back failures can
		// surface at close, and this file is the durable episode log).
		defer f.Close()
		streamFile = f
		cfg.Sink = avfi.NewJSONLSink(f)
		// With the records streamed to disk and no consumer of the
		// in-memory copy, aggregate incrementally instead of retaining
		// O(episodes) memory.
		cfg.DiscardRecords = *recordsCSV == "" && *jsonPath == ""
	}
	columns := len(sources)
	if *matrix {
		m, err := parseMatrix(sources, *weathers, *densities, *aebMode, *activation)
		if err != nil {
			return err
		}
		cfg.Injectors = nil
		cfg.Matrix = m
		columns = m.Size()
	}
	runner, err := avfi.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running %d scenario columns x %d missions x %d reps...\n",
		columns, *missions, *reps)
	rs, err := runner.Run()
	if err != nil {
		return err
	}
	// Pool.Engines lists dead and replaced engines too; count live ones.
	poolSize := 0
	for _, es := range rs.Pool.Engines {
		if !es.Dead && !es.Replaced {
			poolSize++
		}
	}
	fmt.Fprintf(os.Stderr, "engine pool: %d episodes over %d %s engine(s), up to %d multiplexed per connection\n",
		rs.Engine.Episodes, poolSize, rs.Engine.Transport, rs.Engine.MaxConcurrentSessions)
	if rs.Pool.Retries > 0 || rs.Pool.Replacements > 0 {
		fmt.Fprintf(os.Stderr, "engine pool: %d episode retries, %d engine replacements\n",
			rs.Pool.Retries, rs.Pool.Replacements)
	}

	avfi.PrintTable(os.Stdout, fmt.Sprintf("AVFI campaign (seed %d)", *seed), rs.Reports)

	if *recordsCSV != "" {
		if err := writeFile(*recordsCSV, func(f *os.File) error {
			return avfi.WriteRecordsCSV(f, rs.Records)
		}); err != nil {
			return err
		}
	}
	if *reportsCSV != "" {
		if err := writeFile(*reportsCSV, func(f *os.File) error {
			return avfi.WriteReportsCSV(f, rs.Reports)
		}); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f *os.File) error {
			return avfi.WriteJSON(f, rs)
		}); err != nil {
			return err
		}
	}
	if streamFile != nil {
		if err := streamFile.Close(); err != nil {
			return fmt.Errorf("stream-records: %w", err)
		}
	}
	return nil
}

// parseMatrix assembles the -matrix scenario space from its flag values.
func parseMatrix(sources []avfi.InjectorSource, weathers, densities, aebMode, activations string) (*avfi.ScenarioMatrix, error) {
	m := &avfi.ScenarioMatrix{Injectors: sources}
	for _, s := range strings.Split(weathers, ",") {
		w, err := parseWeather(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		m.Weathers = append(m.Weathers, w)
	}
	for _, s := range strings.Split(densities, ",") {
		var d avfi.Density
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%dx%d", &d.NPCs, &d.Pedestrians); err != nil {
			return nil, fmt.Errorf("bad density %q (want NPCSxPEDS, e.g. 8x4)", s)
		}
		m.Densities = append(m.Densities, d)
	}
	switch aebMode {
	case "off":
		m.AEB = []bool{false}
	case "on":
		m.AEB = []bool{true}
	case "both":
		m.AEB = []bool{false, true}
	default:
		return nil, fmt.Errorf("bad -aeb %q (want off|on|both)", aebMode)
	}
	for _, s := range strings.Split(activations, ",") {
		var frame int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &frame); err != nil {
			return nil, fmt.Errorf("bad activation frame %q", s)
		}
		m.ActivationFrames = append(m.ActivationFrames, frame)
	}
	return m, nil
}

func parseWeather(s string) (avfi.Weather, error) {
	switch s {
	case "clear":
		return avfi.WeatherClear, nil
	case "rain":
		return avfi.WeatherRain, nil
	case "fog":
		return avfi.WeatherFog, nil
	default:
		return avfi.WeatherClear, fmt.Errorf("unknown weather %q", s)
	}
}

func agentSource(path string) (avfi.AgentSource, error) {
	if path == "" {
		spec := avfi.DefaultPretrainSpec()
		return avfi.AgentSource{Pretrain: &spec}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	defer f.Close()
	a, err := avfi.LoadAgent(f)
	if err != nil {
		return avfi.AgentSource{}, err
	}
	return avfi.AgentSource{Agent: a}, nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
